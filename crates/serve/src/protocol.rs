//! Typed request / response / event messages and their payload codecs.
//!
//! This module is the single source of truth for what travels inside a
//! frame (the frame envelope itself lives in [`crate::wire`]); the
//! human-readable spec in `docs/PROTOCOL.md` documents the same layouts
//! byte for byte. Encoding is deliberately canonical — one spec value has
//! exactly one byte representation — because the encoded
//! [`StrategySpec`] doubles as the server's cache-key component.

use crate::wire::{Dec, Enc, WireError};
use fastbn_core::{HybridConfig, ParallelMode, PcConfig, Strategy};
use fastbn_data::Dataset;
use fastbn_network::{InferenceError, Posterior, Query};
use fastbn_score::{HillClimbConfig, ScoreKind};
use fastbn_stats::EngineSelect;

/// Frame-kind bytes. Requests are `0x01..=0x3F`, events `0x40..=0x7F`,
/// responses `0x80..=0xDF`, errors `0xE0..`.
pub mod kind {
    /// Request: learn a structure from an inline dataset.
    pub const LEARN: u8 = 0x01;
    /// Request: learn (or reuse) a structure, fit CPTs, calibrate a
    /// junction tree, and cache the fitted model.
    pub const FIT: u8 = 0x02;
    /// Request: answer a batch of posterior queries against a cached
    /// fitted model.
    pub const INFER: u8 = 0x03;
    /// Request: cancel an in-flight job on this connection.
    pub const CANCEL: u8 = 0x04;
    /// Request: liveness + load snapshot (answered inline, never queued).
    pub const HEALTH: u8 = 0x05;
    /// Request: cumulative serving statistics (answered inline).
    pub const STATS: u8 = 0x06;
    /// Request: stop accepting connections and shut the daemon down.
    pub const SHUTDOWN: u8 = 0x07;
    /// Request: a snapshot of the process-wide metrics registry
    /// (answered inline, never queued).
    pub const METRICS: u8 = 0x08;
    /// Request: upload a dataset once and receive its content
    /// fingerprint as a reusable handle (answered inline). Subsequent
    /// `Learn`/`Fit` requests can reference the handle instead of
    /// reshipping the columns (v3).
    pub const DATASET_PUT: u8 = 0x09;

    /// Event: job progress (phase, iteration, score, counters).
    pub const EVENT_PROGRESS: u8 = 0x41;

    /// Response to [`LEARN`].
    pub const LEARN_OK: u8 = 0x81;
    /// Response to [`FIT`].
    pub const FIT_OK: u8 = 0x82;
    /// Response to [`INFER`].
    pub const INFER_OK: u8 = 0x83;
    /// Response to [`CANCEL`].
    pub const CANCEL_OK: u8 = 0x84;
    /// Response to [`HEALTH`].
    pub const HEALTH_OK: u8 = 0x85;
    /// Response to [`STATS`].
    pub const STATS_OK: u8 = 0x86;
    /// Response to [`SHUTDOWN`].
    pub const SHUTDOWN_OK: u8 = 0x87;
    /// Response to [`METRICS`].
    pub const METRICS_OK: u8 = 0x88;
    /// Response to [`DATASET_PUT`].
    pub const DATASET_PUT_OK: u8 = 0x89;

    /// Error response (any request kind).
    pub const ERROR: u8 = 0xE0;
}

/// Error codes carried by an [`kind::ERROR`] frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request payload failed to decode.
    Malformed = 1,
    /// The admission queue is at capacity; retry later.
    Busy = 2,
    /// The job was cancelled before it completed.
    Cancelled = 3,
    /// `Infer` referenced a `model_id` not in the model cache.
    UnknownModel = 4,
    /// The request was structurally valid but semantically unusable
    /// (e.g. a dataset the learners reject).
    BadRequest = 5,
    /// The server failed internally while running the job.
    Internal = 6,
    /// The daemon is shutting down and no longer accepts jobs.
    ShuttingDown = 7,
    /// `Learn`/`Fit` referenced a dataset handle not in the dataset
    /// cache (v3). Re-upload with `DatasetPut` and retry.
    UnknownDataset = 8,
}

impl ErrorCode {
    /// Decode from the wire representation.
    pub fn from_u16(v: u16) -> Result<Self, WireError> {
        Ok(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Busy,
            3 => ErrorCode::Cancelled,
            4 => ErrorCode::UnknownModel,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::Internal,
            7 => ErrorCode::ShuttingDown,
            8 => ErrorCode::UnknownDataset,
            other => return Err(WireError::BadTag(other as u8)),
        })
    }
}

/// An error response: code plus a human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorReply {
    /// Machine-readable cause.
    pub code: ErrorCode,
    /// Diagnostic text (never required for dispatch).
    pub message: String,
}

impl ErrorReply {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u16(self.code as u16).str(&self.message);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let code = ErrorCode::from_u16(d.u16()?)?;
        let message = d.str()?;
        d.finish()?;
        Ok(Self { code, message })
    }
}

// ---------------------------------------------------------------------------
// Dataset

/// Encode a dataset: dims, then per-variable name+arity, then raw
/// column-major values.
pub fn encode_dataset(e: &mut Enc, data: &Dataset) {
    e.u32(data.n_vars() as u32).u64(data.n_samples() as u64);
    for v in 0..data.n_vars() {
        e.str(&data.names()[v]).u8(data.arity(v) as u8);
    }
    for v in 0..data.n_vars() {
        // No per-column length prefix: the length is n_samples by spec.
        for &val in data.column(v) {
            e.u8(val);
        }
    }
}

/// Decode a dataset (validates values against arities via
/// [`Dataset::from_columns`]).
pub fn decode_dataset(d: &mut Dec) -> Result<Dataset, WireError> {
    let n_vars = d.u32()? as usize;
    let n_samples = d.u64()? as usize;
    if n_vars == 0 || n_vars > 1 << 20 {
        return Err(WireError::OutOfBounds("n_vars"));
    }
    let mut names = Vec::with_capacity(n_vars);
    let mut arities = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        names.push(d.str()?);
        arities.push(d.u8()?);
    }
    let mut columns = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        let mut col = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            col.push(d.u8()?);
        }
        columns.push(col);
    }
    Dataset::from_columns(names, arities, columns)
        .map_err(|_| WireError::OutOfBounds("dataset contents"))
}

/// How a `Learn`/`Fit` request names its training data (v3): either the
/// full dataset inline, or the `u64` content fingerprint returned by an
/// earlier [`kind::DATASET_PUT`] on the same daemon. Handles are pure
/// content hashes (§7 of the spec), so a client that knows the
/// fingerprint can skip the upload entirely; an unknown handle is
/// answered with [`ErrorCode::UnknownDataset`].
// The size skew vs `Handle` is fine: a `DatasetRef` lives only on the
// request path, moved once from decode into the job.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum DatasetRef {
    /// The full dataset travels in this request (tag 0).
    Inline(Dataset),
    /// A fingerprint handle from a prior `DatasetPut` (tag 1) — the
    /// request ships 9 bytes instead of the columns.
    Handle(u64),
}

impl DatasetRef {
    /// Encode into `e`: tag byte, then the dataset or the handle.
    pub fn encode(&self, e: &mut Enc) {
        match self {
            DatasetRef::Inline(data) => {
                e.u8(0);
                encode_dataset(e, data);
            }
            DatasetRef::Handle(fp) => {
                e.u8(1).u64(*fp);
            }
        }
    }

    /// Decode from `d`.
    pub fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => DatasetRef::Inline(decode_dataset(d)?),
            1 => DatasetRef::Handle(d.u64()?),
            other => return Err(WireError::BadTag(other)),
        })
    }
}

impl From<Dataset> for DatasetRef {
    fn from(data: Dataset) -> Self {
        DatasetRef::Inline(data)
    }
}

// ---------------------------------------------------------------------------
// Strategy specs

fn encode_mode(mode: ParallelMode) -> u8 {
    match mode {
        ParallelMode::Sequential => 0,
        ParallelMode::EdgeLevel => 1,
        ParallelMode::SampleLevel => 2,
        ParallelMode::CiLevel => 3,
        ParallelMode::WorkSteal => 4,
    }
}

fn decode_mode(v: u8) -> Result<ParallelMode, WireError> {
    Ok(match v {
        0 => ParallelMode::Sequential,
        1 => ParallelMode::EdgeLevel,
        2 => ParallelMode::SampleLevel,
        3 => ParallelMode::CiLevel,
        4 => ParallelMode::WorkSteal,
        other => return Err(WireError::BadTag(other)),
    })
}

fn encode_engine(engine: EngineSelect) -> u8 {
    match engine {
        EngineSelect::Auto => 0,
        EngineSelect::ForceTiled => 1,
        EngineSelect::ForceBitmap => 2,
    }
}

fn decode_engine(v: u8) -> Result<EngineSelect, WireError> {
    Ok(match v {
        0 => EngineSelect::Auto,
        1 => EngineSelect::ForceTiled,
        2 => EngineSelect::ForceBitmap,
        other => return Err(WireError::BadTag(other)),
    })
}

/// Wire form of the constraint-based stage's knobs. Knobs not on the wire
/// (group size, layout, conditioning-set generation, …) take the
/// [`PcConfig::fast_bns`] defaults server-side.
#[derive(Clone, Debug, PartialEq)]
pub struct PcSpec {
    /// CI-test significance level α.
    pub alpha: f64,
    /// Worker threads of the skeleton phase.
    pub threads: u16,
    /// Scheduler for the skeleton phase.
    pub mode: ParallelMode,
    /// Optional cap on the conditioning-set search depth.
    pub max_depth: Option<u32>,
    /// Counting backend (results are identical for any choice).
    pub engine: EngineSelect,
}

impl Default for PcSpec {
    fn default() -> Self {
        let base = PcConfig::fast_bns_steal();
        Self {
            alpha: base.alpha,
            threads: base.threads as u16,
            mode: base.mode,
            max_depth: None,
            engine: base.count_engine,
        }
    }
}

impl PcSpec {
    fn encode(&self, e: &mut Enc) {
        e.f64(self.alpha)
            .u16(self.threads)
            .u8(encode_mode(self.mode));
        match self.max_depth {
            Some(d) => e.u8(1).u32(d),
            None => e.u8(0).u32(0),
        };
        e.u8(encode_engine(self.engine));
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        let alpha = d.f64()?;
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(WireError::OutOfBounds("alpha"));
        }
        let threads = d.u16()?;
        let mode = decode_mode(d.u8()?)?;
        let has_depth = d.u8()?;
        let depth = d.u32()?;
        let max_depth = match has_depth {
            0 => None,
            1 => Some(depth),
            other => return Err(WireError::BadTag(other)),
        };
        let engine = decode_engine(d.u8()?)?;
        Ok(Self {
            alpha,
            threads,
            mode,
            max_depth,
            engine,
        })
    }

    /// The full server-side configuration this spec denotes.
    pub fn to_config(&self) -> PcConfig {
        let mut cfg = PcConfig::fast_bns()
            .with_mode(self.mode)
            .with_threads(self.threads.max(1) as usize)
            .with_alpha(self.alpha)
            .with_count_engine(self.engine);
        if let Some(d) = self.max_depth {
            cfg = cfg.with_max_depth(d as usize);
        }
        cfg
    }
}

/// Wire form of the score-search stage's knobs. Knobs not on the wire
/// take the [`HillClimbConfig::default`] values server-side.
#[derive(Clone, Debug, PartialEq)]
pub struct HcSpec {
    /// The decomposable score to maximize.
    pub kind: ScoreKind,
    /// Worker threads for delta evaluation.
    pub threads: u16,
    /// Accept bounded non-improving moves when stuck.
    pub tabu_search: bool,
    /// Apply the first improving move instead of the best one.
    pub first_ascent: bool,
    /// Seeded random restarts after the initial climb.
    pub restarts: u32,
    /// Seed for the restart RNG.
    pub seed: u64,
    /// Hard cap on any node's parent count.
    pub max_parents: u16,
    /// Counting backend (results are identical for any choice).
    pub engine: EngineSelect,
}

impl Default for HcSpec {
    fn default() -> Self {
        let base = HillClimbConfig::default();
        Self {
            kind: base.kind,
            threads: base.threads as u16,
            tabu_search: base.tabu_search,
            first_ascent: base.first_ascent,
            restarts: base.restarts as u32,
            seed: base.seed,
            max_parents: base.max_parents as u16,
            engine: base.count_engine,
        }
    }
}

impl HcSpec {
    fn encode(&self, e: &mut Enc) {
        let (tag, param) = match self.kind {
            ScoreKind::Bic => (0u8, 0.0),
            ScoreKind::Aic => (1, 0.0),
            ScoreKind::BDeu { ess } => (2, ess),
            ScoreKind::BDs { ess } => (3, ess),
        };
        e.u8(tag).f64(param).u16(self.threads);
        let flags = (self.tabu_search as u8) | ((self.first_ascent as u8) << 1);
        e.u8(flags)
            .u32(self.restarts)
            .u64(self.seed)
            .u16(self.max_parents)
            .u8(encode_engine(self.engine));
    }

    fn decode(d: &mut Dec) -> Result<Self, WireError> {
        let tag = d.u8()?;
        let param = d.f64()?;
        let kind = match tag {
            0 => ScoreKind::Bic,
            1 => ScoreKind::Aic,
            2 => ScoreKind::BDeu { ess: param },
            3 => ScoreKind::BDs { ess: param },
            other => return Err(WireError::BadTag(other)),
        };
        // `is_nan` check kept explicit: a plain `<= 0.0` would admit NaN.
        if matches!(tag, 2 | 3) && (param.is_nan() || param <= 0.0) {
            return Err(WireError::OutOfBounds("ess"));
        }
        let threads = d.u16()?;
        let flags = d.u8()?;
        if flags & !0b11 != 0 {
            return Err(WireError::OutOfBounds("hc flags"));
        }
        Ok(Self {
            kind,
            threads,
            tabu_search: flags & 1 != 0,
            first_ascent: flags & 2 != 0,
            restarts: d.u32()?,
            seed: d.u64()?,
            max_parents: d.u16()?,
            engine: decode_engine(d.u8()?)?,
        })
    }

    /// The full server-side configuration this spec denotes.
    pub fn to_config(&self) -> HillClimbConfig {
        HillClimbConfig::default()
            .with_kind(self.kind)
            .with_threads(self.threads.max(1) as usize)
            .with_tabu_search(self.tabu_search)
            .with_first_ascent(self.first_ascent)
            .with_restarts(self.restarts as usize)
            .with_seed(self.seed)
            .with_max_parents(self.max_parents.max(1) as usize)
            .with_count_engine(self.engine)
    }
}

/// Which learner family a `Learn`/`Fit` request runs, with its wire-level
/// knobs. The canonical encoding of this spec is also the server's
/// config half of every cache key, so equal specs always share cache
/// entries and distinct specs never collide.
#[derive(Clone, Debug, PartialEq)]
pub enum StrategySpec {
    /// Constraint-based (PC-stable / Fast-BNS).
    PcStable(PcSpec),
    /// Score-based (hill climbing / tabu).
    HillClimb(HcSpec),
    /// Hybrid (MMHC-style: skeleton-restricted climb).
    Hybrid(PcSpec, HcSpec),
}

impl StrategySpec {
    /// Fast-BNS constraint-based learning with `threads` workers.
    pub fn pc(threads: u16) -> Self {
        StrategySpec::PcStable(PcSpec {
            threads,
            ..PcSpec::default()
        })
    }

    /// Default hill climb with `threads` workers.
    pub fn hill_climb(threads: u16) -> Self {
        StrategySpec::HillClimb(HcSpec {
            threads,
            ..HcSpec::default()
        })
    }

    /// Default hybrid learner with `threads` workers in both stages.
    pub fn hybrid(threads: u16) -> Self {
        StrategySpec::Hybrid(
            PcSpec {
                threads,
                ..PcSpec::default()
            },
            HcSpec {
                threads,
                ..HcSpec::default()
            },
        )
    }

    /// Encode into `e`.
    pub fn encode(&self, e: &mut Enc) {
        match self {
            StrategySpec::PcStable(pc) => {
                e.u8(0);
                pc.encode(e);
            }
            StrategySpec::HillClimb(hc) => {
                e.u8(1);
                hc.encode(e);
            }
            StrategySpec::Hybrid(pc, hc) => {
                e.u8(2);
                pc.encode(e);
                hc.encode(e);
            }
        }
    }

    /// Decode from `d`.
    pub fn decode(d: &mut Dec) -> Result<Self, WireError> {
        Ok(match d.u8()? {
            0 => StrategySpec::PcStable(PcSpec::decode(d)?),
            1 => StrategySpec::HillClimb(HcSpec::decode(d)?),
            2 => StrategySpec::Hybrid(PcSpec::decode(d)?, HcSpec::decode(d)?),
            other => return Err(WireError::BadTag(other)),
        })
    }

    /// The canonical byte encoding — the config half of the server's
    /// cache keys.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode(&mut e);
        e.into_bytes()
    }

    /// The full server-side [`Strategy`] this spec denotes (wire knobs
    /// applied over the documented defaults).
    pub fn to_strategy(&self) -> Strategy {
        match self {
            StrategySpec::PcStable(pc) => Strategy::PcStable(pc.to_config()),
            StrategySpec::HillClimb(hc) => Strategy::HillClimb(hc.to_config()),
            StrategySpec::Hybrid(pc, hc) => Strategy::Hybrid(HybridConfig {
                pc: pc.to_config(),
                hc: hc.to_config(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Requests

/// Payload of a [`kind::LEARN`] request.
#[derive(Clone, Debug, PartialEq)]
pub struct LearnRequest {
    /// Which learner family and knobs to run.
    pub strategy: StrategySpec,
    /// The training data — inline or by fingerprint handle (v3).
    pub dataset: DatasetRef,
}

impl LearnRequest {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.strategy.encode(&mut e);
        self.dataset.encode(&mut e);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let strategy = StrategySpec::decode(&mut d)?;
        let dataset = DatasetRef::decode(&mut d)?;
        d.finish()?;
        Ok(Self { strategy, dataset })
    }
}

/// Payload of a [`kind::DATASET_PUT`] request: upload a dataset once,
/// get its content fingerprint back as an upload-once handle.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetPutRequest {
    /// The dataset to cache server-side.
    pub dataset: Dataset,
}

impl DatasetPutRequest {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        encode_dataset(&mut e, &self.dataset);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let dataset = decode_dataset(&mut d)?;
        d.finish()?;
        Ok(Self { dataset })
    }
}

/// Payload of a [`kind::DATASET_PUT_OK`] response. The fingerprint is
/// the same content hash used in every cache key (§7 of the spec), so
/// it is stable across connections and daemon restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetPutReply {
    /// The dataset's content fingerprint — pass as
    /// [`DatasetRef::Handle`] in later `Learn`/`Fit` requests.
    pub fingerprint: u64,
    /// Variable count of the uploaded dataset (echo, for sanity checks).
    pub n_vars: u32,
    /// Sample count of the uploaded dataset.
    pub n_samples: u64,
    /// Was an identical dataset already resident? (`true` = this upload
    /// was redundant; the cached copy is reused.)
    pub already_cached: bool,
}

impl DatasetPutReply {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.fingerprint)
            .u32(self.n_vars)
            .u64(self.n_samples)
            .u8(self.already_cached as u8);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let reply = Self {
            fingerprint: d.u64()?,
            n_vars: d.u32()?,
            n_samples: d.u64()?,
            already_cached: d.u8()? != 0,
        };
        d.finish()?;
        Ok(reply)
    }
}

/// Payload of a [`kind::FIT`] request: learn (or reuse) a structure with
/// `strategy`, fit CPTs with Laplace `smoothing`, calibrate a junction
/// tree with `calibrate_threads` workers, and cache the fitted model.
#[derive(Clone, Debug, PartialEq)]
pub struct FitRequest {
    /// Which learner family and knobs produce the structure.
    pub strategy: StrategySpec,
    /// The training data — inline or by fingerprint handle (v3).
    pub dataset: DatasetRef,
    /// Laplace smoothing pseudo-count (≥ 0).
    pub smoothing: f64,
    /// Worker threads for junction-tree calibration.
    pub calibrate_threads: u16,
}

impl FitRequest {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.strategy.encode(&mut e);
        self.dataset.encode(&mut e);
        e.f64(self.smoothing).u16(self.calibrate_threads);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let strategy = StrategySpec::decode(&mut d)?;
        let dataset = DatasetRef::decode(&mut d)?;
        let smoothing = d.f64()?;
        if smoothing.is_nan() || smoothing < 0.0 {
            return Err(WireError::OutOfBounds("smoothing"));
        }
        let calibrate_threads = d.u16()?;
        d.finish()?;
        Ok(Self {
            strategy,
            dataset,
            smoothing,
            calibrate_threads,
        })
    }
}

/// Payload of a [`kind::INFER`] request: a batch of posterior queries
/// against a fitted model cached by an earlier `Fit`.
#[derive(Clone, Debug, PartialEq)]
pub struct InferRequest {
    /// The model id returned by [`FitReply`].
    pub model_id: u64,
    /// The query batch.
    pub queries: Vec<Query>,
}

impl InferRequest {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.model_id).u32(self.queries.len() as u32);
        for q in &self.queries {
            e.u32(q.target as u32).u32(q.evidence.len() as u32);
            for &(var, state) in &q.evidence {
                e.u32(var as u32).u8(state);
            }
        }
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let model_id = d.u64()?;
        let n = d.u32()? as usize;
        let mut queries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let target = d.u32()? as usize;
            let n_ev = d.u32()? as usize;
            let mut evidence = Vec::with_capacity(n_ev.min(1 << 16));
            for _ in 0..n_ev {
                let var = d.u32()? as usize;
                let state = d.u8()?;
                evidence.push((var, state));
            }
            queries.push(Query { target, evidence });
        }
        d.finish()?;
        Ok(Self { model_id, queries })
    }
}

/// Payload of a [`kind::CANCEL`] request: the request id of the job to
/// cancel (scoped to the sending connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CancelRequest {
    /// The request id of the in-flight job on this connection.
    pub target_request_id: u32,
}

impl CancelRequest {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.target_request_id);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let target_request_id = d.u32()?;
        d.finish()?;
        Ok(Self { target_request_id })
    }
}

// ---------------------------------------------------------------------------
// Events

/// Job phase reported by a [`ProgressEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum JobPhase {
    /// Constraint-based skeleton discovery (one event per depth).
    Skeleton = 0,
    /// V-structure + Meek orientation.
    Orientation = 1,
    /// Score-based search (one event per applied move).
    Search = 2,
    /// CPT fitting.
    Fit = 3,
    /// Junction-tree calibration.
    Calibrate = 4,
}

impl JobPhase {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Skeleton => "skeleton",
            JobPhase::Orientation => "orientation",
            JobPhase::Search => "search",
            JobPhase::Fit => "fit",
            JobPhase::Calibrate => "calibrate",
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => JobPhase::Skeleton,
            1 => JobPhase::Orientation,
            2 => JobPhase::Search,
            3 => JobPhase::Fit,
            4 => JobPhase::Calibrate,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Payload of a [`kind::EVENT_PROGRESS`] event, streamed while a job
/// runs. Field meaning depends on the phase: during `Skeleton`,
/// `iteration` is the completed depth and `ci_tests`/`edges` carry that
/// depth's counters; during `Search`, `iteration` is the cumulative
/// applied-move count and `score` the current total score (`ci_tests`/
/// `edges` are 0); phase-entry events carry zeros.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgressEvent {
    /// The phase the job is in.
    pub phase: JobPhase,
    /// Depth (skeleton) or cumulative applied moves (search); 0 on
    /// phase-entry events.
    pub iteration: u64,
    /// Current total score (search phase; NaN elsewhere).
    pub score: f64,
    /// CI tests performed in the reported depth (skeleton phase).
    pub ci_tests: u64,
    /// Edges removed in the reported depth (skeleton phase).
    pub edges: u64,
}

impl ProgressEvent {
    /// A phase-entry event (zero counters, NaN score).
    pub fn phase_entry(phase: JobPhase) -> Self {
        Self {
            phase,
            iteration: 0,
            score: f64::NAN,
            ci_tests: 0,
            edges: 0,
        }
    }

    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(self.phase as u8)
            .u64(self.iteration)
            .f64(self.score)
            .u64(self.ci_tests)
            .u64(self.edges);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let ev = Self {
            phase: JobPhase::from_u8(d.u8()?)?,
            iteration: d.u64()?,
            score: d.f64()?,
            ci_tests: d.u64()?,
            edges: d.u64()?,
        };
        d.finish()?;
        Ok(ev)
    }
}

// ---------------------------------------------------------------------------
// Replies

/// Per-depth skeleton statistics inside a [`LearnReply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireDepthStats {
    /// The depth `d`.
    pub depth: u32,
    /// Edges present when the depth began.
    pub edges_at_start: u32,
    /// Edges removed during the depth.
    pub edges_removed: u32,
    /// CI tests performed.
    pub ci_tests: u64,
    /// Wall time of the depth, in microseconds.
    pub micros: u64,
}

/// Constraint-stage summary inside a [`LearnReply`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WirePcStats {
    /// Per-depth breakdown.
    pub depths: Vec<WireDepthStats>,
    /// Skeleton-phase wall time, microseconds.
    pub skeleton_micros: u64,
    /// Orientation wall time, microseconds.
    pub orientation_micros: u64,
}

/// Search-stage summary inside a [`LearnReply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct WireSearchStats {
    /// Moves applied.
    pub iterations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Deltas actually computed.
    pub moves_evaluated: u64,
    /// Candidate moves discarded before evaluation.
    pub moves_pruned: u64,
    /// Deltas served from the maintained table.
    pub moves_carried: u64,
    /// Score-cache hits.
    pub cache_hits: u64,
    /// Score-cache misses.
    pub cache_misses: u64,
    /// Search wall time, microseconds.
    pub micros: u64,
}

/// Payload of a [`kind::LEARN_OK`] response.
#[derive(Clone, Debug, PartialEq)]
pub struct LearnReply {
    /// The server's cache key for this (dataset, strategy) structure —
    /// resending the same request hits the cache.
    pub structure_key: u64,
    /// Was this structure served from the cache?
    pub cache_hit: bool,
    /// Variable count of the learned structure.
    pub n_vars: u32,
    /// Compelled (directed) CPDAG edges.
    pub directed_edges: Vec<(u32, u32)>,
    /// Reversible (undirected) CPDAG edges.
    pub undirected_edges: Vec<(u32, u32)>,
    /// The searched DAG's edges (score-based and hybrid strategies).
    pub dag_edges: Option<Vec<(u32, u32)>>,
    /// Total decomposable score (score-based and hybrid strategies).
    pub score: Option<f64>,
    /// Constraint-stage statistics, when that stage ran.
    pub pc_stats: Option<WirePcStats>,
    /// Search-stage statistics, when that stage ran.
    pub search_stats: Option<WireSearchStats>,
}

fn encode_edges(e: &mut Enc, edges: &[(u32, u32)]) {
    e.u32(edges.len() as u32);
    for &(u, v) in edges {
        e.u32(u).u32(v);
    }
}

fn decode_edges(d: &mut Dec) -> Result<Vec<(u32, u32)>, WireError> {
    let n = d.u32()? as usize;
    let mut edges = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let u = d.u32()?;
        let v = d.u32()?;
        edges.push((u, v));
    }
    Ok(edges)
}

impl LearnReply {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.structure_key)
            .u8(self.cache_hit as u8)
            .u32(self.n_vars);
        encode_edges(&mut e, &self.directed_edges);
        encode_edges(&mut e, &self.undirected_edges);
        match &self.dag_edges {
            Some(edges) => {
                e.u8(1);
                encode_edges(&mut e, edges);
            }
            None => {
                e.u8(0);
            }
        }
        match self.score {
            Some(s) => e.u8(1).f64(s),
            None => e.u8(0),
        };
        match &self.pc_stats {
            Some(s) => {
                e.u8(1).u32(s.depths.len() as u32);
                for d in &s.depths {
                    e.u32(d.depth)
                        .u32(d.edges_at_start)
                        .u32(d.edges_removed)
                        .u64(d.ci_tests)
                        .u64(d.micros);
                }
                e.u64(s.skeleton_micros).u64(s.orientation_micros);
            }
            None => {
                e.u8(0);
            }
        }
        match &self.search_stats {
            Some(s) => {
                e.u8(1)
                    .u64(s.iterations)
                    .u64(s.restarts)
                    .u64(s.moves_evaluated)
                    .u64(s.moves_pruned)
                    .u64(s.moves_carried)
                    .u64(s.cache_hits)
                    .u64(s.cache_misses)
                    .u64(s.micros);
            }
            None => {
                e.u8(0);
            }
        }
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let structure_key = d.u64()?;
        let cache_hit = d.u8()? != 0;
        let n_vars = d.u32()?;
        let directed_edges = decode_edges(&mut d)?;
        let undirected_edges = decode_edges(&mut d)?;
        let dag_edges = match d.u8()? {
            0 => None,
            1 => Some(decode_edges(&mut d)?),
            other => return Err(WireError::BadTag(other)),
        };
        let score = match d.u8()? {
            0 => None,
            1 => Some(d.f64()?),
            other => return Err(WireError::BadTag(other)),
        };
        let pc_stats = match d.u8()? {
            0 => None,
            1 => {
                let n = d.u32()? as usize;
                let mut depths = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    depths.push(WireDepthStats {
                        depth: d.u32()?,
                        edges_at_start: d.u32()?,
                        edges_removed: d.u32()?,
                        ci_tests: d.u64()?,
                        micros: d.u64()?,
                    });
                }
                Some(WirePcStats {
                    depths,
                    skeleton_micros: d.u64()?,
                    orientation_micros: d.u64()?,
                })
            }
            other => return Err(WireError::BadTag(other)),
        };
        let search_stats = match d.u8()? {
            0 => None,
            1 => Some(WireSearchStats {
                iterations: d.u64()?,
                restarts: d.u64()?,
                moves_evaluated: d.u64()?,
                moves_pruned: d.u64()?,
                moves_carried: d.u64()?,
                cache_hits: d.u64()?,
                cache_misses: d.u64()?,
                micros: d.u64()?,
            }),
            other => return Err(WireError::BadTag(other)),
        };
        d.finish()?;
        Ok(Self {
            structure_key,
            cache_hit,
            n_vars,
            directed_edges,
            undirected_edges,
            dag_edges,
            score,
            pc_stats,
            search_stats,
        })
    }
}

/// Payload of a [`kind::FIT_OK`] response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FitReply {
    /// Handle for `Infer` requests; stable across identical `Fit`
    /// requests (it is the cache key).
    pub model_id: u64,
    /// Was the fitted model served from the cache?
    pub cache_hit: bool,
    /// Variable count of the fitted network.
    pub n_vars: u32,
    /// Edge count of the fitted DAG.
    pub n_edges: u32,
    /// Cliques in the calibrated junction tree.
    pub n_cliques: u32,
    /// Largest clique size in variables (treewidth + 1).
    pub width: u32,
    /// Largest clique table in cells.
    pub max_clique_cells: u64,
    /// Wall time of CPT fitting, microseconds.
    pub fit_micros: u64,
    /// Wall time of calibration, microseconds.
    pub calibrate_micros: u64,
}

impl FitReply {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.model_id)
            .u8(self.cache_hit as u8)
            .u32(self.n_vars)
            .u32(self.n_edges)
            .u32(self.n_cliques)
            .u32(self.width)
            .u64(self.max_clique_cells)
            .u64(self.fit_micros)
            .u64(self.calibrate_micros);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let reply = Self {
            model_id: d.u64()?,
            cache_hit: d.u8()? != 0,
            n_vars: d.u32()?,
            n_edges: d.u32()?,
            n_cliques: d.u32()?,
            width: d.u32()?,
            max_clique_cells: d.u64()?,
            fit_micros: d.u64()?,
            calibrate_micros: d.u64()?,
        };
        d.finish()?;
        Ok(reply)
    }
}

/// Payload of a [`kind::INFER_OK`] response: one result per query, in
/// request order.
#[derive(Clone, Debug, PartialEq)]
pub struct InferReply {
    /// Per-query posteriors (or the per-query inference error).
    pub results: Vec<Result<Posterior, InferenceError>>,
}

impl InferReply {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.results.len() as u32);
        for r in &self.results {
            match r {
                Ok(p) => {
                    e.u8(0).u32(p.target as u32).u32(p.probs.len() as u32);
                    for &prob in &p.probs {
                        e.f64(prob);
                    }
                }
                Err(InferenceError::ImpossibleEvidence) => {
                    e.u8(1);
                }
            }
        }
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let n = d.u32()? as usize;
        let mut results = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            match d.u8()? {
                0 => {
                    let target = d.u32()? as usize;
                    let n_probs = d.u32()? as usize;
                    let mut probs = Vec::with_capacity(n_probs.min(1 << 16));
                    for _ in 0..n_probs {
                        probs.push(d.f64()?);
                    }
                    results.push(Ok(Posterior { target, probs }));
                }
                1 => results.push(Err(InferenceError::ImpossibleEvidence)),
                other => return Err(WireError::BadTag(other)),
            }
        }
        d.finish()?;
        Ok(Self { results })
    }
}

/// Payload of a [`kind::CANCEL_OK`] response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CancelReply {
    /// Did the target request id name a job still in flight on this
    /// connection? (`false` = already finished, or never existed.)
    pub found: bool,
}

impl CancelReply {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(self.found as u8);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let found = d.u8()? != 0;
        d.finish()?;
        Ok(Self { found })
    }
}

/// Payload of a [`kind::HEALTH_OK`] response — a cheap liveness + load
/// snapshot, always answered inline (never queued behind jobs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthReply {
    /// The protocol version the server speaks.
    pub protocol_version: u8,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Jobs currently executing.
    pub jobs_running: u32,
    /// Jobs admitted but not yet running.
    pub jobs_queued: u32,
    /// Admission-queue capacity.
    pub queue_capacity: u32,
    /// Requests rejected with `Busy` since daemon start (v2).
    pub busy_rejections: u64,
}

impl HealthReply {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(self.protocol_version)
            .u64(self.uptime_ms)
            .u32(self.jobs_running)
            .u32(self.jobs_queued)
            .u32(self.queue_capacity)
            .u64(self.busy_rejections);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let reply = Self {
            protocol_version: d.u8()?,
            uptime_ms: d.u64()?,
            jobs_running: d.u32()?,
            jobs_queued: d.u32()?,
            queue_capacity: d.u32()?,
            busy_rejections: d.u64()?,
        };
        d.finish()?;
        Ok(reply)
    }
}

/// Payload of a [`kind::STATS_OK`] response — cumulative counters since
/// daemon start.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Jobs admitted to the queue.
    pub jobs_accepted: u64,
    /// Jobs that ran to completion (including failed ones).
    pub jobs_completed: u64,
    /// Jobs that ended via cancellation.
    pub jobs_cancelled: u64,
    /// Requests rejected with `Busy`.
    pub busy_rejections: u64,
    /// Structure-cache hits.
    pub structure_hits: u64,
    /// Structure-cache misses (fresh learns).
    pub structure_misses: u64,
    /// Model-cache hits.
    pub model_hits: u64,
    /// Model-cache misses (fresh fit+calibrate).
    pub model_misses: u64,
    /// Cumulative wall time in learn jobs, microseconds.
    pub learn_micros: u64,
    /// Cumulative wall time in fit jobs, microseconds.
    pub fit_micros: u64,
    /// Cumulative wall time in infer jobs, microseconds.
    pub infer_micros: u64,
    /// Posterior queries answered.
    pub queries_answered: u64,
    /// Hill-climb deltas actually computed, summed over learn jobs (v2).
    pub moves_evaluated: u64,
    /// Candidate moves discarded before evaluation, summed over learn
    /// jobs (v2).
    pub moves_pruned: u64,
    /// Deltas served from the maintained table, summed over learn jobs
    /// (v2).
    pub moves_carried: u64,
    /// Count queries answered by the tiled engine, process-wide (v2).
    pub engine_tiled_picks: u64,
    /// Count queries answered by the bitmap engine, process-wide (v2).
    pub engine_bitmap_picks: u64,
    /// Dataset-cache hits — handle lookups that found their dataset
    /// resident (v3).
    pub dataset_hits: u64,
    /// Dataset-cache misses — handle lookups answered with
    /// `UnknownDataset` (v3).
    pub dataset_misses: u64,
    /// Entries evicted from the structure/model/dataset caches since
    /// daemon start (v3).
    pub cache_evictions: u64,
    /// Estimated resident bytes across the three server caches (v3).
    pub cache_bytes: u64,
    /// Active SIMD popcount kernel tier: 0 = scalar, 1 = AVX2,
    /// 2 = AVX-512 (v4; mirrors the `fastbn.stats.simd.kernel` gauge).
    pub simd_kernel: u8,
    /// Bitmap-engine table fills served by the scalar kernels (v4).
    pub simd_scalar_fills: u64,
    /// Bitmap-engine table fills served by the AVX2 kernels (v4).
    pub simd_avx2_fills: u64,
    /// Bitmap-engine table fills served by the AVX-512 kernels (v4).
    pub simd_avx512_fills: u64,
    /// Jobs currently executing.
    pub jobs_running: u32,
    /// Jobs admitted but not yet running.
    pub jobs_queued: u32,
}

impl StatsReply {
    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.uptime_ms)
            .u64(self.jobs_accepted)
            .u64(self.jobs_completed)
            .u64(self.jobs_cancelled)
            .u64(self.busy_rejections)
            .u64(self.structure_hits)
            .u64(self.structure_misses)
            .u64(self.model_hits)
            .u64(self.model_misses)
            .u64(self.learn_micros)
            .u64(self.fit_micros)
            .u64(self.infer_micros)
            .u64(self.queries_answered)
            .u64(self.moves_evaluated)
            .u64(self.moves_pruned)
            .u64(self.moves_carried)
            .u64(self.engine_tiled_picks)
            .u64(self.engine_bitmap_picks)
            .u64(self.dataset_hits)
            .u64(self.dataset_misses)
            .u64(self.cache_evictions)
            .u64(self.cache_bytes)
            .u8(self.simd_kernel)
            .u64(self.simd_scalar_fills)
            .u64(self.simd_avx2_fills)
            .u64(self.simd_avx512_fills)
            .u32(self.jobs_running)
            .u32(self.jobs_queued);
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let reply = Self {
            uptime_ms: d.u64()?,
            jobs_accepted: d.u64()?,
            jobs_completed: d.u64()?,
            jobs_cancelled: d.u64()?,
            busy_rejections: d.u64()?,
            structure_hits: d.u64()?,
            structure_misses: d.u64()?,
            model_hits: d.u64()?,
            model_misses: d.u64()?,
            learn_micros: d.u64()?,
            fit_micros: d.u64()?,
            infer_micros: d.u64()?,
            queries_answered: d.u64()?,
            moves_evaluated: d.u64()?,
            moves_pruned: d.u64()?,
            moves_carried: d.u64()?,
            engine_tiled_picks: d.u64()?,
            engine_bitmap_picks: d.u64()?,
            dataset_hits: d.u64()?,
            dataset_misses: d.u64()?,
            cache_evictions: d.u64()?,
            cache_bytes: d.u64()?,
            simd_kernel: d.u8()?,
            simd_scalar_fills: d.u64()?,
            simd_avx2_fills: d.u64()?,
            simd_avx512_fills: d.u64()?,
            jobs_running: d.u32()?,
            jobs_queued: d.u32()?,
        };
        d.finish()?;
        Ok(reply)
    }
}

/// One histogram inside a [`MetricsReply`]: interval counts per bucket
/// plus the running sum, exactly as the registry snapshot holds them
/// (not Prometheus-cumulative; the renderer does that conversion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireHistogram {
    /// Dotted registry name (e.g. `fastbn.serve.request.learn_us`).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the
    /// last is the +Inf overflow bucket).
    pub buckets: Vec<u64>,
}

/// Payload of a [`kind::METRICS_OK`] response — a point-in-time snapshot
/// of the daemon's process-wide metrics registry. Names are sorted
/// (BTreeMap order), so two snapshots of the same registry are
/// byte-comparable.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsReply {
    /// Monotone counters, `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges, `(name, value)`.
    pub gauges: Vec<(String, i64)>,
    /// Latency / size distributions.
    pub histograms: Vec<WireHistogram>,
}

impl MetricsReply {
    /// Build from a registry snapshot.
    pub fn from_snapshot(snap: &fastbn_obs::Snapshot) -> Self {
        Self {
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            histograms: snap
                .histograms
                .iter()
                .map(|h| WireHistogram {
                    name: h.name.clone(),
                    count: h.count,
                    sum: h.sum,
                    bounds: h.bounds.clone(),
                    buckets: h.buckets.clone(),
                })
                .collect(),
        }
    }

    /// Convert back into a registry snapshot (for rendering client-side
    /// with [`fastbn_obs::render_prometheus`]).
    pub fn to_snapshot(&self) -> fastbn_obs::Snapshot {
        fastbn_obs::Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| fastbn_obs::HistogramSnapshot {
                    name: h.name.clone(),
                    count: h.count,
                    sum: h.sum,
                    bounds: h.bounds.clone(),
                    buckets: h.buckets.clone(),
                })
                .collect(),
        }
    }

    /// Encode to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.counters.len() as u32);
        for (name, v) in &self.counters {
            e.str(name).u64(*v);
        }
        e.u32(self.gauges.len() as u32);
        for (name, v) in &self.gauges {
            e.str(name).u64(*v as u64);
        }
        e.u32(self.histograms.len() as u32);
        for h in &self.histograms {
            e.str(&h.name).u64(h.count).u64(h.sum);
            e.u32(h.bounds.len() as u32);
            for &b in &h.bounds {
                e.u64(b);
            }
            // No bucket count on the wire: it is bounds.len() + 1 by spec.
            for &b in &h.buckets {
                e.u64(b);
            }
        }
        e.into_bytes()
    }

    /// Decode from payload bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(payload);
        let n_counters = d.u32()? as usize;
        if n_counters > 1 << 20 {
            return Err(WireError::OutOfBounds("n_counters"));
        }
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            counters.push((d.str()?, d.u64()?));
        }
        let n_gauges = d.u32()? as usize;
        if n_gauges > 1 << 20 {
            return Err(WireError::OutOfBounds("n_gauges"));
        }
        let mut gauges = Vec::with_capacity(n_gauges);
        for _ in 0..n_gauges {
            gauges.push((d.str()?, d.u64()? as i64));
        }
        let n_hists = d.u32()? as usize;
        if n_hists > 1 << 20 {
            return Err(WireError::OutOfBounds("n_histograms"));
        }
        let mut histograms = Vec::with_capacity(n_hists);
        for _ in 0..n_hists {
            let name = d.str()?;
            let count = d.u64()?;
            let sum = d.u64()?;
            let n_bounds = d.u32()? as usize;
            if n_bounds > 1 << 12 {
                return Err(WireError::OutOfBounds("n_bounds"));
            }
            let mut bounds = Vec::with_capacity(n_bounds);
            for _ in 0..n_bounds {
                bounds.push(d.u64()?);
            }
            let mut buckets = Vec::with_capacity(n_bounds + 1);
            for _ in 0..n_bounds + 1 {
                buckets.push(d.u64()?);
            }
            histograms.push(WireHistogram {
                name,
                count,
                sum,
                bounds,
                buckets,
            });
        }
        d.finish()?;
        Ok(Self {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        Dataset::from_columns(
            vec!["a".into(), "b".into()],
            vec![2, 3],
            vec![vec![0, 1, 1, 0], vec![2, 0, 1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn dataset_round_trips() {
        let data = sample_dataset();
        let mut e = Enc::new();
        encode_dataset(&mut e, &data);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = decode_dataset(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn strategy_specs_round_trip_and_are_canonical() {
        for spec in [
            StrategySpec::pc(2),
            StrategySpec::hill_climb(4),
            StrategySpec::hybrid(1),
            StrategySpec::HillClimb(HcSpec {
                kind: ScoreKind::BDeu { ess: 2.5 },
                tabu_search: true,
                ..HcSpec::default()
            }),
        ] {
            let bytes = spec.canonical_bytes();
            let mut d = Dec::new(&bytes);
            let back = StrategySpec::decode(&mut d).unwrap();
            d.finish().unwrap();
            assert_eq!(back, spec);
            // Canonical: re-encoding the decoded value is byte-identical.
            assert_eq!(back.canonical_bytes(), bytes);
        }
    }

    #[test]
    fn learn_request_round_trips() {
        for dataset in [
            DatasetRef::Inline(sample_dataset()),
            DatasetRef::Handle(0xFEED_F00D_DEAD_BEEF),
        ] {
            let req = LearnRequest {
                strategy: StrategySpec::hybrid(2),
                dataset,
            };
            let back = LearnRequest::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn fit_request_round_trips() {
        for dataset in [DatasetRef::Inline(sample_dataset()), DatasetRef::Handle(42)] {
            let req = FitRequest {
                strategy: StrategySpec::pc(1),
                dataset,
                smoothing: 0.5,
                calibrate_threads: 2,
            };
            let back = FitRequest::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn handle_requests_are_small() {
        // The whole point of upload-once handles: a by-handle learn
        // request must not scale with the dataset (9 bytes of dataset
        // reference vs names + arities + n_vars × n_samples inline).
        let strategy = StrategySpec::pc(1);
        let inline = LearnRequest {
            strategy: strategy.clone(),
            dataset: DatasetRef::Inline(sample_dataset()),
        }
        .encode();
        let by_handle = LearnRequest {
            strategy: strategy.clone(),
            dataset: DatasetRef::Handle(1),
        }
        .encode();
        assert_eq!(by_handle.len(), strategy.canonical_bytes().len() + 9);
        assert!(by_handle.len() < inline.len());
    }

    #[test]
    fn dataset_put_round_trips() {
        let req = DatasetPutRequest {
            dataset: sample_dataset(),
        };
        assert_eq!(DatasetPutRequest::decode(&req.encode()).unwrap(), req);

        let reply = DatasetPutReply {
            fingerprint: 0xABCD_EF01_2345_6789,
            n_vars: 2,
            n_samples: 4,
            already_cached: true,
        };
        assert_eq!(DatasetPutReply::decode(&reply.encode()).unwrap(), reply);
    }

    #[test]
    fn infer_request_round_trips() {
        let req = InferRequest {
            model_id: 0xDEAD_BEEF,
            queries: vec![
                Query::marginal(3),
                Query::with_evidence(1, vec![(0, 2), (4, 0)]),
            ],
        };
        let back = InferRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn replies_round_trip() {
        let learn = LearnReply {
            structure_key: 42,
            cache_hit: true,
            n_vars: 5,
            directed_edges: vec![(0, 1), (2, 3)],
            undirected_edges: vec![(1, 4)],
            dag_edges: Some(vec![(0, 1)]),
            score: Some(-123.5),
            pc_stats: Some(WirePcStats {
                depths: vec![WireDepthStats {
                    depth: 0,
                    edges_at_start: 10,
                    edges_removed: 4,
                    ci_tests: 10,
                    micros: 1500,
                }],
                skeleton_micros: 2000,
                orientation_micros: 30,
            }),
            search_stats: Some(WireSearchStats {
                iterations: 7,
                micros: 900,
                ..WireSearchStats::default()
            }),
        };
        assert_eq!(LearnReply::decode(&learn.encode()).unwrap(), learn);

        let fit = FitReply {
            model_id: 99,
            cache_hit: false,
            n_vars: 5,
            n_edges: 6,
            n_cliques: 4,
            width: 3,
            max_clique_cells: 64,
            fit_micros: 120,
            calibrate_micros: 340,
        };
        assert_eq!(FitReply::decode(&fit.encode()).unwrap(), fit);

        let infer = InferReply {
            results: vec![
                Ok(Posterior {
                    target: 2,
                    probs: vec![0.25, 0.75],
                }),
                Err(InferenceError::ImpossibleEvidence),
            ],
        };
        assert_eq!(InferReply::decode(&infer.encode()).unwrap(), infer);

        let health = HealthReply {
            protocol_version: 2,
            uptime_ms: 12345,
            jobs_running: 1,
            jobs_queued: 2,
            queue_capacity: 8,
            busy_rejections: 4,
        };
        assert_eq!(HealthReply::decode(&health.encode()).unwrap(), health);

        let stats = StatsReply {
            uptime_ms: 1,
            jobs_accepted: 2,
            busy_rejections: 3,
            queries_answered: 1000,
            moves_evaluated: 500,
            moves_pruned: 400,
            moves_carried: 300,
            engine_tiled_picks: 20,
            engine_bitmap_picks: 10,
            dataset_hits: 6,
            dataset_misses: 1,
            cache_evictions: 3,
            cache_bytes: 4096,
            simd_kernel: 2,
            simd_scalar_fills: 7,
            simd_avx2_fills: 8,
            simd_avx512_fills: 9,
            ..StatsReply::default()
        };
        assert_eq!(StatsReply::decode(&stats.encode()).unwrap(), stats);

        let err = ErrorReply {
            code: ErrorCode::Busy,
            message: "queue full".into(),
        };
        assert_eq!(ErrorReply::decode(&err.encode()).unwrap(), err);

        let cancel = CancelReply { found: true };
        assert_eq!(CancelReply::decode(&cancel.encode()).unwrap(), cancel);
    }

    #[test]
    fn metrics_reply_round_trips() {
        let reply = MetricsReply {
            counters: vec![
                ("fastbn.parallel.steal.steals".into(), 42),
                ("fastbn.score.cache.hits".into(), 7),
            ],
            gauges: vec![("fastbn.parallel.jobs.queue_depth".into(), -1)],
            histograms: vec![WireHistogram {
                name: "fastbn.serve.request.learn_us".into(),
                count: 3,
                sum: 600,
                bounds: vec![100, 1000],
                buckets: vec![1, 2, 0],
            }],
        };
        assert_eq!(MetricsReply::decode(&reply.encode()).unwrap(), reply);
        assert_eq!(
            MetricsReply::decode(&MetricsReply::default().encode()).unwrap(),
            MetricsReply::default()
        );

        // The snapshot round trip preserves everything the renderer needs.
        let snap = reply.to_snapshot();
        assert_eq!(MetricsReply::from_snapshot(&snap), reply);
        let text = fastbn_obs::render_prometheus(&snap);
        assert!(text.contains("fastbn_parallel_steal_steals 42"));
    }

    #[test]
    fn progress_events_round_trip() {
        let ev = ProgressEvent {
            phase: JobPhase::Search,
            iteration: 17,
            score: -4411.25,
            ci_tests: 0,
            edges: 0,
        };
        assert_eq!(ProgressEvent::decode(&ev.encode()).unwrap(), ev);
        let entry = ProgressEvent::phase_entry(JobPhase::Calibrate);
        let back = ProgressEvent::decode(&entry.encode()).unwrap();
        assert_eq!(back.phase, JobPhase::Calibrate);
        assert!(back.score.is_nan());
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut e = Enc::new();
        e.u8(9); // no such strategy tag
        let bytes = e.into_bytes();
        assert!(StrategySpec::decode(&mut Dec::new(&bytes)).is_err());
        assert!(ErrorCode::from_u16(0).is_err());
        assert!(ErrorCode::from_u16(9).is_err());
        assert_eq!(ErrorCode::from_u16(8).unwrap(), ErrorCode::UnknownDataset);
        assert!(JobPhase::from_u8(9).is_err());
        let mut e = Enc::new();
        e.u8(2); // no such dataset-ref tag
        let bytes = e.into_bytes();
        assert!(DatasetRef::decode(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn specs_map_to_full_configs() {
        let StrategySpec::Hybrid(pc, hc) = StrategySpec::hybrid(3) else {
            unreachable!()
        };
        let pc_cfg = pc.to_config();
        assert_eq!(pc_cfg.threads, 3);
        assert_eq!(pc_cfg.mode, ParallelMode::WorkSteal);
        let hc_cfg = hc.to_config();
        assert_eq!(hc_cfg.threads, 3);
        assert_eq!(hc_cfg.kind, ScoreKind::Bic);
        match StrategySpec::pc(2).to_strategy() {
            Strategy::PcStable(cfg) => assert_eq!(cfg.threads, 2),
            _ => panic!("wrong family"),
        }
    }
}
