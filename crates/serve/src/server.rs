//! The daemon: accept loop, per-connection framing, job dispatch.
//!
//! ## Threading model
//!
//! * One **accept thread** (the caller of [`Server::run`], or the thread
//!   [`Server::spawn`] creates) owns the listener.
//! * Two threads per client: a **reader** that decodes frames and
//!   dispatches them (so `Cancel` frames are seen while a job is still
//!   running), and a **writer** that owns all socket writes, draining one
//!   event channel — progress events, replies and errors, in arrival
//!   order. Replies are written the instant a job finishes; no socket
//!   timeout sits on the reply path.
//! * A fixed pool of **job runner threads** ([`fastbn_parallel::JobPool`])
//!   executes `Learn`/`Fit`/`Infer` jobs FIFO. Each job may open its own
//!   scoped worker team internally (the learners' own thread pools), so
//!   `runners` bounds *jobs in flight*, not total threads.
//!
//! ## Admission and cancellation
//!
//! The job queue is bounded: when `queue_capacity` jobs are already
//! waiting, new job requests are rejected immediately with a `Busy`
//! error rather than queued or blocked — the client owns the retry
//! policy. `Cancel` flips the target job's [`CancelToken`]; the learners
//! poll it at their deterministic safe points (per skeleton depth, per
//! applied search move) and between phases, so cancellation is prompt
//! but never tears a phase mid-way. A cancelled job answers with an
//! [`ErrorCode::Cancelled`] error and caches nothing.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use fastbn_core::{
    learn_structure_observed, DepthStats, LearnPhase, ProgressSink, StructureResult,
};
use fastbn_network::JoinTree;
use fastbn_parallel::{CancelToken, JobHandle, JobPool};

use fastbn_data::Dataset;

use crate::cache::{
    dataset_fingerprint, model_key, structure_key, ModelEntry, ServeCache, StructureEntry,
    DEFAULT_BUDGET_BYTES,
};
use crate::protocol::{
    kind, CancelReply, CancelRequest, DatasetPutReply, DatasetPutRequest, DatasetRef, ErrorCode,
    ErrorReply, FitReply, FitRequest, HealthReply, InferReply, InferRequest, JobPhase, LearnReply,
    LearnRequest, MetricsReply, ProgressEvent, StatsReply, WireDepthStats, WirePcStats,
    WireSearchStats,
};
use crate::wire::{encode_frame, Frame, FrameDecoder, PROTOCOL_VERSION};

/// How long the reader thread blocks in `read` before re-checking the
/// shutdown flag. Only shutdown responsiveness depends on it — replies
/// and events are written by the writer thread as they arrive.
const READ_SLICE: Duration = Duration::from_millis(25);

/// How long the accept loop sleeps between polls when no client is
/// connecting.
const ACCEPT_SLICE: Duration = Duration::from_millis(20);

/// Daemon tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Job runner threads — jobs in flight at once (min 1).
    pub runners: usize,
    /// Admitted-but-not-running jobs before `Busy` rejection (min 1).
    pub queue_capacity: usize,
    /// Structures, models and datasets retained per cache
    /// (least-recently-used evicted first).
    pub cache_capacity: usize,
    /// Per-cache byte budget: least-recently-used entries are evicted
    /// once a cache's estimated resident bytes exceed it.
    pub cache_budget_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            runners: 2,
            queue_capacity: 8,
            cache_capacity: 64,
            cache_budget_bytes: DEFAULT_BUDGET_BYTES,
        }
    }
}

impl ServeConfig {
    /// Set the job runner count.
    pub fn with_runners(mut self, runners: usize) -> Self {
        self.runners = runners;
        self
    }

    /// Set the admission-queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap;
        self
    }

    /// Set the cache capacity (structures, models and datasets each).
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache_capacity = cap;
        self
    }

    /// Set the per-cache byte budget.
    pub fn with_cache_budget_bytes(mut self, budget: usize) -> Self {
        self.cache_budget_bytes = budget;
        self
    }
}

/// Cumulative serving counters (all relaxed atomics — read for `Stats`).
#[derive(Default)]
struct Counters {
    jobs_accepted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
    busy_rejections: AtomicU64,
    learn_micros: AtomicU64,
    fit_micros: AtomicU64,
    infer_micros: AtomicU64,
    queries_answered: AtomicU64,
    moves_evaluated: AtomicU64,
    moves_pruned: AtomicU64,
    moves_carried: AtomicU64,
}

/// State shared by the accept loop, connection threads and job runners.
struct Shared {
    cfg: ServeConfig,
    pool: JobPool,
    cache: ServeCache,
    counters: Counters,
    start: Instant,
    shutdown: AtomicBool,
}

impl Shared {
    /// Tally a finished learn's search-stage counters so `Stats` can
    /// report them without re-walking the caches.
    fn note_search_stats(&self, reply: &LearnReply) {
        if let Some(s) = &reply.search_stats {
            self.counters
                .moves_evaluated
                .fetch_add(s.moves_evaluated, Ordering::Relaxed);
            self.counters
                .moves_pruned
                .fetch_add(s.moves_pruned, Ordering::Relaxed);
            self.counters
                .moves_carried
                .fetch_add(s.moves_carried, Ordering::Relaxed);
        }
    }

    fn stats_reply(&self) -> StatsReply {
        let cache = self.cache.counters();
        // Engine picks live in the process-wide metrics registry — they
        // count every counting query in the process, not only the
        // daemon's own jobs (the registry is the source of truth the
        // `Metrics` frame exposes in full).
        let snap = fastbn_obs::global().snapshot();
        let pick = |name: &str| -> u64 {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |&(_, v)| v)
        };
        StatsReply {
            uptime_ms: self.start.elapsed().as_millis() as u64,
            jobs_accepted: self.counters.jobs_accepted.load(Ordering::Relaxed),
            jobs_completed: self.counters.jobs_completed.load(Ordering::Relaxed),
            jobs_cancelled: self.counters.jobs_cancelled.load(Ordering::Relaxed),
            busy_rejections: self.counters.busy_rejections.load(Ordering::Relaxed),
            structure_hits: cache.structure_hits,
            structure_misses: cache.structure_misses,
            model_hits: cache.model_hits,
            model_misses: cache.model_misses,
            learn_micros: self.counters.learn_micros.load(Ordering::Relaxed),
            fit_micros: self.counters.fit_micros.load(Ordering::Relaxed),
            infer_micros: self.counters.infer_micros.load(Ordering::Relaxed),
            queries_answered: self.counters.queries_answered.load(Ordering::Relaxed),
            moves_evaluated: self.counters.moves_evaluated.load(Ordering::Relaxed),
            moves_pruned: self.counters.moves_pruned.load(Ordering::Relaxed),
            moves_carried: self.counters.moves_carried.load(Ordering::Relaxed),
            engine_tiled_picks: pick("fastbn.stats.engine.tiled_picks"),
            engine_bitmap_picks: pick("fastbn.stats.engine.bitmap_picks"),
            dataset_hits: cache.dataset_hits,
            dataset_misses: cache.dataset_misses,
            cache_evictions: cache.evictions,
            cache_bytes: cache.bytes,
            simd_kernel: fastbn_stats::simd::active_tier() as u8,
            simd_scalar_fills: pick("fastbn.stats.simd.scalar_fills"),
            simd_avx2_fills: pick("fastbn.stats.simd.avx2_fills"),
            simd_avx512_fills: pick("fastbn.stats.simd.avx512_fills"),
            jobs_running: self.pool.running() as u32,
            jobs_queued: self.pool.queued() as u32,
        }
    }

    /// Resolve a request's dataset reference: inline datasets are
    /// fingerprinted on the spot; handles are looked up in the dataset
    /// cache (a miss is the client's signal to `DatasetPut` and retry).
    fn resolve_dataset(&self, dref: DatasetRef) -> Result<(u64, Arc<Dataset>), ErrorReply> {
        match dref {
            DatasetRef::Inline(data) => Ok((dataset_fingerprint(&data), Arc::new(data))),
            DatasetRef::Handle(fp) => match self.cache.get_dataset(fp) {
                Some(data) => Ok((fp, data)),
                None => Err(ErrorReply {
                    code: ErrorCode::UnknownDataset,
                    message: format!("no cached dataset {fp:#018x}"),
                }),
            },
        }
    }

    fn health_reply(&self) -> HealthReply {
        HealthReply {
            protocol_version: PROTOCOL_VERSION,
            uptime_ms: self.start.elapsed().as_millis() as u64,
            jobs_running: self.pool.running() as u32,
            jobs_queued: self.pool.queued() as u32,
            queue_capacity: self.cfg.queue_capacity as u32,
            busy_rejections: self.pool.busy_rejections(),
        }
    }
}

/// What a job sends back to its connection thread.
enum ConnEvent {
    /// A progress event to stream to the client.
    Progress(u32, ProgressEvent),
    /// The job's final reply frame: `(request_id, kind, payload)`.
    Reply(u32, u8, Vec<u8>),
    /// The job failed; send an error frame.
    Failure(u32, ErrorReply),
}

/// Bridges the learners' [`ProgressSink`] seam onto a connection's event
/// channel, and folds the job's [`CancelToken`] into every keep-going
/// answer. Called only from the job's coordinating thread, at the
/// learners' deterministic safe points.
struct JobSink {
    tx: Mutex<Sender<ConnEvent>>,
    request_id: u32,
    cancel: CancelToken,
}

impl JobSink {
    fn send(&self, event: ProgressEvent) {
        // A dead connection just means nobody is listening anymore; the
        // job still runs to completion (or until cancelled).
        let _ = self
            .tx
            .lock()
            .unwrap()
            .send(ConnEvent::Progress(self.request_id, event));
    }
}

impl ProgressSink for JobSink {
    fn on_phase(&self, phase: LearnPhase) {
        let phase = match phase {
            LearnPhase::Skeleton => JobPhase::Skeleton,
            LearnPhase::Orientation => JobPhase::Orientation,
            LearnPhase::Search => JobPhase::Search,
        };
        self.send(ProgressEvent::phase_entry(phase));
    }

    fn on_skeleton_depth(&self, stats: &DepthStats) -> bool {
        self.send(ProgressEvent {
            phase: JobPhase::Skeleton,
            iteration: stats.depth as u64,
            score: f64::NAN,
            ci_tests: stats.ci_tests,
            edges: stats.edges_removed as u64,
        });
        !self.cancel.is_cancelled()
    }

    fn on_search_iteration(&self, iteration: u64, score: f64) -> bool {
        self.send(ProgressEvent {
            phase: JobPhase::Search,
            iteration,
            score,
            ci_tests: 0,
            edges: 0,
        });
        !self.cancel.is_cancelled()
    }
}

/// A running daemon bound to a socket. Call [`Server::run`] to serve on
/// the current thread or [`Server::spawn`] to serve on a new one.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Join handle for a daemon started with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the daemon to stop (same effect as a `Shutdown` frame) and
    /// wait for it to wind down.
    pub fn stop(self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }

    /// Wait for the daemon to exit on its own (e.g. after a client sent
    /// `Shutdown`).
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            pool: JobPool::new(cfg.runners, cfg.queue_capacity),
            cache: ServeCache::with_budget(cfg.cache_capacity, cfg.cache_budget_bytes),
            counters: Counters::default(),
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        Ok(Self {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a `Shutdown` frame arrives (or [`ServerHandle::stop`]
    /// is called on a spawned server). Blocks the calling thread.
    pub fn run(self) -> io::Result<()> {
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = self.shared.clone();
                    conns.push(thread::spawn(move || handle_conn(stream, shared)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_SLICE),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        // Stop accepting, let connection threads notice the flag, flush
        // their in-flight jobs and hang up.
        drop(self.listener);
        for conn in conns {
            let _ = conn.join();
        }
        Ok(())
    }

    /// Serve on a background thread; returns once the listener is live.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shared = self.shared.clone();
        let thread = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shared,
            thread,
        }
    }
}

fn send_frame(stream: &mut TcpStream, kind: u8, request_id: u32, payload: &[u8]) -> io::Result<()> {
    let frame = encode_frame(kind, request_id, payload);
    stream.write_all(&frame)?;
    fastbn_obs::counter!("fastbn.serve.conn.bytes_out").add(frame.len() as u64);
    Ok(())
}

/// The in-flight job table, shared by the reader (inserts, cancels) and
/// the writer (removes once a job's final frame is written).
type Pending = Arc<Mutex<HashMap<u32, JobHandle>>>;

/// Serve one client until it hangs up, errors, or the daemon shuts down
/// with no replies left to flush.
fn handle_conn(mut stream: TcpStream, shared: Arc<Shared>) {
    // Guard, not paired calls: the function has several early returns
    // and the gauge must come back down on every one of them.
    struct ConnGauge;
    impl Drop for ConnGauge {
        fn drop(&mut self) {
            fastbn_obs::gauge!("fastbn.serve.conn.active").sub(1);
        }
    }
    fastbn_obs::gauge!("fastbn.serve.conn.active").add(1);
    let _conn_gauge = ConnGauge;
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_SLICE)).is_err() {
        return;
    }
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx): (Sender<ConnEvent>, Receiver<ConnEvent>) = channel();
    let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
    let writer_pending = pending.clone();
    let writer = thread::spawn(move || write_loop(writer_stream, rx, writer_pending));

    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        // On shutdown, hang up once nothing is left in flight (the
        // writer drains anything already queued before exiting).
        if shared.shutdown.load(Ordering::SeqCst) && pending.lock().unwrap().is_empty() {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                fastbn_obs::counter!("fastbn.serve.conn.bytes_in").add(n as u64);
                decoder.feed(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => dispatch(&shared, &tx, &pending, frame),
                        Ok(None) => break,
                        Err(e) => {
                            // Framing is broken; nothing downstream can
                            // be trusted. Report and hang up.
                            fail(&tx, 0, ErrorCode::Malformed, e.to_string());
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }

    // The client is gone (or we are shutting down): nobody can read the
    // results, so stop the work.
    for handle in pending.lock().unwrap().values() {
        handle.cancel();
    }
    // Closing our channel end lets the writer exit once every running
    // job has dropped its own sender; buffered frames are still written.
    drop(tx);
    let _ = writer.join();
}

/// The writer thread: sole owner of socket writes. Blocks on the event
/// channel and writes each frame the moment it arrives; exits when every
/// sender is gone (reader closed + no job still running) or on a write
/// error.
fn write_loop(mut stream: TcpStream, rx: Receiver<ConnEvent>, pending: Pending) {
    while let Ok(event) = rx.recv() {
        let written = match event {
            ConnEvent::Progress(id, ev) => {
                send_frame(&mut stream, kind::EVENT_PROGRESS, id, &ev.encode())
            }
            ConnEvent::Reply(id, k, payload) => {
                pending.lock().unwrap().remove(&id);
                send_frame(&mut stream, k, id, &payload)
            }
            ConnEvent::Failure(id, err) => {
                pending.lock().unwrap().remove(&id);
                send_frame(&mut stream, kind::ERROR, id, &err.encode())
            }
        };
        if written.is_err() {
            // Keep draining so finished jobs still clear the pending
            // table (the reader keys its shutdown check on it).
            for leftover in rx.iter() {
                if let ConnEvent::Reply(id, _, _) | ConnEvent::Failure(id, _) = leftover {
                    pending.lock().unwrap().remove(&id);
                }
            }
            return;
        }
    }
}

fn reply(tx: &Sender<ConnEvent>, id: u32, kind: u8, payload: Vec<u8>) {
    let _ = tx.send(ConnEvent::Reply(id, kind, payload));
}

/// Handle one decoded frame on the reader thread. Everything written to
/// the socket goes through the writer's channel.
fn dispatch(shared: &Arc<Shared>, tx: &Sender<ConnEvent>, pending: &Pending, frame: Frame) {
    let id = frame.request_id;
    match frame.kind {
        kind::HEALTH => reply(tx, id, kind::HEALTH_OK, shared.health_reply().encode()),
        kind::STATS => reply(tx, id, kind::STATS_OK, shared.stats_reply().encode()),
        kind::METRICS => {
            let snap = fastbn_obs::global().snapshot();
            reply(
                tx,
                id,
                kind::METRICS_OK,
                MetricsReply::from_snapshot(&snap).encode(),
            );
        }
        kind::SHUTDOWN => {
            shared.shutdown.store(true, Ordering::SeqCst);
            reply(tx, id, kind::SHUTDOWN_OK, Vec::new());
        }
        // Answered inline: the upload already paid its cost on the wire;
        // fingerprinting + one map insert never needs a runner slot.
        kind::DATASET_PUT => match DatasetPutRequest::decode(&frame.payload) {
            Ok(req) => {
                if req.dataset.n_vars() < 2 {
                    fail(tx, id, ErrorCode::BadRequest, "need at least 2 variables");
                    return;
                }
                let n_vars = req.dataset.n_vars() as u32;
                let n_samples = req.dataset.n_samples() as u64;
                let (fingerprint, already_cached) = shared.cache.put_dataset(req.dataset);
                reply(
                    tx,
                    id,
                    kind::DATASET_PUT_OK,
                    DatasetPutReply {
                        fingerprint,
                        n_vars,
                        n_samples,
                        already_cached,
                    }
                    .encode(),
                );
            }
            Err(e) => fail(tx, id, ErrorCode::Malformed, e.to_string()),
        },
        kind::CANCEL => match CancelRequest::decode(&frame.payload) {
            Ok(req) => {
                let found = match pending.lock().unwrap().get(&req.target_request_id) {
                    Some(handle) => {
                        handle.cancel();
                        true
                    }
                    None => false,
                };
                reply(tx, id, kind::CANCEL_OK, CancelReply { found }.encode());
            }
            Err(e) => fail(tx, id, ErrorCode::Malformed, e.to_string()),
        },
        kind::LEARN => match LearnRequest::decode(&frame.payload) {
            Ok(req) => {
                let shared_job = shared.clone();
                let tx_job = tx.clone();
                submit_job(shared, tx, pending, id, move |cancel| {
                    run_learn(&shared_job, &tx_job, id, cancel, req)
                });
            }
            Err(e) => fail(tx, id, ErrorCode::Malformed, e.to_string()),
        },
        kind::FIT => match FitRequest::decode(&frame.payload) {
            Ok(req) => {
                let shared_job = shared.clone();
                let tx_job = tx.clone();
                submit_job(shared, tx, pending, id, move |cancel| {
                    run_fit(&shared_job, &tx_job, id, cancel, req)
                });
            }
            Err(e) => fail(tx, id, ErrorCode::Malformed, e.to_string()),
        },
        kind::INFER => match InferRequest::decode(&frame.payload) {
            Ok(req) => {
                let shared_job = shared.clone();
                let tx_job = tx.clone();
                submit_job(shared, tx, pending, id, move |cancel| {
                    run_infer(&shared_job, &tx_job, id, cancel, req)
                });
            }
            Err(e) => fail(tx, id, ErrorCode::Malformed, e.to_string()),
        },
        other => fail(
            tx,
            id,
            ErrorCode::Malformed,
            format!("unknown frame kind 0x{other:02X}"),
        ),
    }
}

/// Admission control: reject with `ShuttingDown`/`Busy` instead of
/// queueing unboundedly.
fn submit_job(
    shared: &Arc<Shared>,
    tx: &Sender<ConnEvent>,
    pending: &Pending,
    id: u32,
    job: impl FnOnce(&CancelToken) + Send + 'static,
) {
    if shared.shutdown.load(Ordering::SeqCst) {
        fail(tx, id, ErrorCode::ShuttingDown, "daemon is shutting down");
        return;
    }
    let shared_run = shared.clone();
    let wrapped = move |cancel: &CancelToken| {
        // A panicking job must not take its runner thread (or the
        // daemon) down with it. The job body reports its own failures
        // over the channel before any panic-prone work; a panic here is
        // contained and only this job's reply is lost.
        let _ = catch_unwind(AssertUnwindSafe(|| job(cancel)));
        shared_run
            .counters
            .jobs_completed
            .fetch_add(1, Ordering::Relaxed);
    };
    // Insert before submit: a fast job must find its own entry in the
    // table (the writer removes it when the final frame goes out).
    let mut table = pending.lock().unwrap();
    match shared.pool.submit(wrapped) {
        Ok(handle) => {
            shared
                .counters
                .jobs_accepted
                .fetch_add(1, Ordering::Relaxed);
            table.insert(id, handle);
        }
        Err(_) => {
            drop(table);
            shared
                .counters
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            fail(tx, id, ErrorCode::Busy, "admission queue is full");
        }
    }
}

fn fail(tx: &Sender<ConnEvent>, id: u32, code: ErrorCode, message: impl Into<String>) {
    let _ = tx.send(ConnEvent::Failure(
        id,
        ErrorReply {
            code,
            message: message.into(),
        },
    ));
}

/// Convert the learner's output into the wire reply.
fn build_learn_reply(key: u64, result: &StructureResult) -> LearnReply {
    let as_u32 = |edges: Vec<(usize, usize)>| -> Vec<(u32, u32)> {
        edges
            .into_iter()
            .map(|(u, v)| (u as u32, v as u32))
            .collect()
    };
    LearnReply {
        structure_key: key,
        cache_hit: false,
        n_vars: result.cpdag.n() as u32,
        directed_edges: as_u32(result.cpdag.directed_edges()),
        undirected_edges: as_u32(result.cpdag.undirected_edges()),
        dag_edges: result.dag.as_ref().map(|d| as_u32(d.edges())),
        score: result.score,
        pc_stats: result.pc_stats.as_ref().map(|s| WirePcStats {
            depths: s
                .depths
                .iter()
                .map(|d| WireDepthStats {
                    depth: d.depth as u32,
                    edges_at_start: d.edges_at_start as u32,
                    edges_removed: d.edges_removed as u32,
                    ci_tests: d.ci_tests,
                    micros: d.duration.as_micros() as u64,
                })
                .collect(),
            skeleton_micros: s.skeleton_duration.as_micros() as u64,
            orientation_micros: s.orientation_duration.as_micros() as u64,
        }),
        search_stats: result.search_stats.as_ref().map(|s| WireSearchStats {
            iterations: s.iterations,
            restarts: s.restarts,
            moves_evaluated: s.moves_evaluated,
            moves_pruned: s.moves_pruned,
            moves_carried: s.moves_carried,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            micros: s.duration.as_micros() as u64,
        }),
    }
}

/// Learn (or replay) a structure; caches only complete, uncancelled
/// results so a cache entry is always bitwise equal to a fresh run.
fn run_learn(
    shared: &Arc<Shared>,
    tx: &Sender<ConnEvent>,
    id: u32,
    cancel: &CancelToken,
    req: LearnRequest,
) {
    let t0 = Instant::now();
    let (fp, dataset) = match shared.resolve_dataset(req.dataset) {
        Ok(resolved) => resolved,
        Err(err) => {
            let _ = tx.send(ConnEvent::Failure(id, err));
            return;
        }
    };
    if dataset.n_vars() < 2 {
        fail(tx, id, ErrorCode::BadRequest, "need at least 2 variables");
        return;
    }
    let key = structure_key(fp, &req.strategy.canonical_bytes());
    if let Some(entry) = shared.cache.get_structure(key) {
        let mut reply = entry.reply.clone();
        reply.cache_hit = true;
        let _ = tx.send(ConnEvent::Reply(id, kind::LEARN_OK, reply.encode()));
        return;
    }
    let sink = JobSink {
        tx: Mutex::new(tx.clone()),
        request_id: id,
        cancel: cancel.clone(),
    };
    let strategy = req.strategy.to_strategy();
    let result = learn_structure_observed(&*dataset, &strategy, &sink);
    if cancel.is_cancelled() {
        shared
            .counters
            .jobs_cancelled
            .fetch_add(1, Ordering::Relaxed);
        fail(tx, id, ErrorCode::Cancelled, "learn cancelled");
        return;
    }
    let reply = build_learn_reply(key, &result);
    shared.note_search_stats(&reply);
    shared.cache.put_structure(
        key,
        StructureEntry {
            reply: reply.clone(),
            result,
        },
    );
    shared
        .counters
        .learn_micros
        .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    fastbn_obs::histogram!("fastbn.serve.request.learn_us").observe_duration(t0.elapsed());
    let _ = tx.send(ConnEvent::Reply(id, kind::LEARN_OK, reply.encode()));
}

/// Learn-if-needed, fit CPTs, calibrate a junction tree, cache the
/// model. Reuses the structure cache so `Learn` + `Fit` of the same
/// request pair never learns twice.
fn run_fit(
    shared: &Arc<Shared>,
    tx: &Sender<ConnEvent>,
    id: u32,
    cancel: &CancelToken,
    req: FitRequest,
) {
    let t0 = Instant::now();
    let (fp, dataset) = match shared.resolve_dataset(req.dataset) {
        Ok(resolved) => resolved,
        Err(err) => {
            let _ = tx.send(ConnEvent::Failure(id, err));
            return;
        }
    };
    if dataset.n_vars() < 2 {
        fail(tx, id, ErrorCode::BadRequest, "need at least 2 variables");
        return;
    }
    let skey = structure_key(fp, &req.strategy.canonical_bytes());
    let mkey = model_key(skey, req.smoothing);
    if let Some(model) = shared.cache.get_model(mkey) {
        let mut reply = model.reply;
        reply.cache_hit = true;
        let _ = tx.send(ConnEvent::Reply(id, kind::FIT_OK, reply.encode()));
        return;
    }
    let sink = JobSink {
        tx: Mutex::new(tx.clone()),
        request_id: id,
        cancel: cancel.clone(),
    };
    let structure = match shared.cache.get_structure(skey) {
        Some(entry) => entry,
        None => {
            let result = learn_structure_observed(&*dataset, &req.strategy.to_strategy(), &sink);
            if cancel.is_cancelled() {
                shared
                    .counters
                    .jobs_cancelled
                    .fetch_add(1, Ordering::Relaxed);
                fail(tx, id, ErrorCode::Cancelled, "fit cancelled during learn");
                return;
            }
            let reply = build_learn_reply(skey, &result);
            shared.note_search_stats(&reply);
            shared
                .cache
                .put_structure(skey, StructureEntry { reply, result })
        }
    };
    sink.send(ProgressEvent::phase_entry(JobPhase::Fit));
    let t_fit = Instant::now();
    let net = structure.result.fit(&dataset, req.smoothing, "served");
    let fit_micros = t_fit.elapsed().as_micros() as u64;
    if cancel.is_cancelled() {
        shared
            .counters
            .jobs_cancelled
            .fetch_add(1, Ordering::Relaxed);
        fail(tx, id, ErrorCode::Cancelled, "fit cancelled");
        return;
    }
    sink.send(ProgressEvent::phase_entry(JobPhase::Calibrate));
    let t_cal = Instant::now();
    let tree = JoinTree::build(&net, req.calibrate_threads.max(1) as usize);
    let calibrate_micros = t_cal.elapsed().as_micros() as u64;
    let stats = tree.stats();
    let reply = FitReply {
        model_id: mkey,
        cache_hit: false,
        n_vars: net.n() as u32,
        n_edges: net.dag().edge_count() as u32,
        n_cliques: stats.n_cliques as u32,
        width: stats.width as u32,
        max_clique_cells: stats.max_clique_cells as u64,
        fit_micros,
        calibrate_micros,
    };
    shared
        .cache
        .put_model(mkey, ModelEntry { net, tree, reply });
    shared
        .counters
        .fit_micros
        .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    fastbn_obs::histogram!("fastbn.serve.request.fit_us").observe_duration(t0.elapsed());
    let _ = tx.send(ConnEvent::Reply(id, kind::FIT_OK, reply.encode()));
}

/// Answer a posterior batch against a cached model.
fn run_infer(
    shared: &Arc<Shared>,
    tx: &Sender<ConnEvent>,
    id: u32,
    cancel: &CancelToken,
    req: InferRequest,
) {
    let t0 = Instant::now();
    if cancel.is_cancelled() {
        shared
            .counters
            .jobs_cancelled
            .fetch_add(1, Ordering::Relaxed);
        fail(tx, id, ErrorCode::Cancelled, "infer cancelled");
        return;
    }
    let Some(model) = shared.cache.peek_model(req.model_id) else {
        fail(
            tx,
            id,
            ErrorCode::UnknownModel,
            format!("no fitted model {:#018x}", req.model_id),
        );
        return;
    };
    let n = model.net.n();
    for q in &req.queries {
        let ok = q.target < n
            && q.evidence
                .iter()
                .all(|&(v, s)| v < n && (s as usize) < model.net.arity(v));
        if !ok {
            fail(tx, id, ErrorCode::BadRequest, "query out of range");
            return;
        }
    }
    let results = model.tree.posteriors(&req.queries);
    shared
        .counters
        .queries_answered
        .fetch_add(req.queries.len() as u64, Ordering::Relaxed);
    shared
        .counters
        .infer_micros
        .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    fastbn_obs::histogram!("fastbn.serve.request.infer_us").observe_duration(t0.elapsed());
    let _ = tx.send(ConnEvent::Reply(
        id,
        kind::INFER_OK,
        InferReply { results }.encode(),
    ));
}
