//! A blocking client for the daemon.
//!
//! One [`Client`] owns one connection and runs one request at a time
//! (the protocol itself multiplexes; this client keeps the simple
//! synchronous shape). Progress-streaming variants take a callback;
//! returning `false` from it sends a `Cancel` frame for the in-flight
//! job and then waits for the server's final answer (usually a
//! [`ErrorCode::Cancelled`] error, but the job may win the race and
//! complete).

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use fastbn_data::Dataset;
use fastbn_network::Query;

use crate::protocol::{
    kind, CancelRequest, DatasetPutReply, DatasetPutRequest, DatasetRef, ErrorCode, ErrorReply,
    FitReply, FitRequest, HealthReply, InferReply, InferRequest, LearnReply, LearnRequest,
    MetricsReply, ProgressEvent, StatsReply, StrategySpec,
};
use crate::wire::{encode_frame, read_frame, WireError};

/// Everything a request can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or unexpected EOF).
    Io(io::Error),
    /// A frame or payload failed to decode.
    Wire(WireError),
    /// The server answered with an error frame.
    Server(ErrorReply),
    /// The server answered with a frame kind this request cannot accept.
    Unexpected(u8),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(e) => write!(f, "server error {:?}: {}", e.code, e.message),
            ClientError::Unexpected(k) => write!(f, "unexpected frame kind 0x{k:02X}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// Is this a server-side error with the given code?
    pub fn is_code(&self, code: ErrorCode) -> bool {
        matches!(self, ClientError::Server(e) if e.code == code)
    }
}

/// A blocking connection to a running daemon.
pub struct Client {
    stream: TcpStream,
    next_id: u32,
}

impl Client {
    /// Connect to a daemon at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, next_id: 1 })
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        id
    }

    /// Send one request and block until its final reply, feeding
    /// progress events to `on_event` along the way.
    fn roundtrip(
        &mut self,
        req_kind: u8,
        reply_kind: u8,
        payload: &[u8],
        mut on_event: impl FnMut(&ProgressEvent) -> bool,
    ) -> Result<Vec<u8>, ClientError> {
        let id = self.fresh_id();
        self.stream
            .write_all(&encode_frame(req_kind, id, payload))?;
        let mut cancel_sent = false;
        loop {
            let frame = read_frame(&mut self.stream)?
                .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
            if frame.kind == kind::EVENT_PROGRESS && frame.request_id == id {
                let ev = ProgressEvent::decode(&frame.payload)?;
                if !on_event(&ev) && !cancel_sent {
                    let cancel_id = self.fresh_id();
                    let req = CancelRequest {
                        target_request_id: id,
                    };
                    self.stream
                        .write_all(&encode_frame(kind::CANCEL, cancel_id, &req.encode()))?;
                    cancel_sent = true;
                }
                continue;
            }
            // Absorb the acknowledgement of our own Cancel frame.
            if frame.kind == kind::CANCEL_OK && frame.request_id != id {
                continue;
            }
            if frame.request_id != id {
                continue;
            }
            if frame.kind == reply_kind {
                return Ok(frame.payload);
            }
            if frame.kind == kind::ERROR {
                return Err(ClientError::Server(ErrorReply::decode(&frame.payload)?));
            }
            return Err(ClientError::Unexpected(frame.kind));
        }
    }

    /// Upload a dataset once; the returned fingerprint is an
    /// upload-once handle accepted by [`Client::learn_by_handle`] and
    /// [`Client::fit_by_handle`], so repeated jobs over the same data
    /// stop reshipping the columns.
    pub fn put_dataset(&mut self, dataset: &Dataset) -> Result<DatasetPutReply, ClientError> {
        let req = DatasetPutRequest {
            dataset: dataset.clone(),
        };
        let payload = self.roundtrip(
            kind::DATASET_PUT,
            kind::DATASET_PUT_OK,
            &req.encode(),
            |_| true,
        )?;
        Ok(DatasetPutReply::decode(&payload)?)
    }

    /// Learn a structure; blocks until the reply (no progress callback).
    pub fn learn(
        &mut self,
        strategy: StrategySpec,
        dataset: &Dataset,
    ) -> Result<LearnReply, ClientError> {
        self.learn_with_progress(strategy, dataset, |_| true)
    }

    /// [`Client::learn`] by upload-once handle: ships 9 bytes of
    /// dataset reference instead of the columns. Fails with
    /// [`ErrorCode::UnknownDataset`] if the daemon no longer holds the
    /// dataset (evicted, or never uploaded) — `put_dataset` and retry.
    pub fn learn_by_handle(
        &mut self,
        strategy: StrategySpec,
        handle: u64,
    ) -> Result<LearnReply, ClientError> {
        self.learn_ref(strategy, DatasetRef::Handle(handle), |_| true)
    }

    /// Learn a structure, streaming progress events to `on_event`.
    /// Returning `false` cancels the job.
    pub fn learn_with_progress(
        &mut self,
        strategy: StrategySpec,
        dataset: &Dataset,
        on_event: impl FnMut(&ProgressEvent) -> bool,
    ) -> Result<LearnReply, ClientError> {
        self.learn_ref(strategy, DatasetRef::Inline(dataset.clone()), on_event)
    }

    fn learn_ref(
        &mut self,
        strategy: StrategySpec,
        dataset: DatasetRef,
        on_event: impl FnMut(&ProgressEvent) -> bool,
    ) -> Result<LearnReply, ClientError> {
        let req = LearnRequest { strategy, dataset };
        let payload = self.roundtrip(kind::LEARN, kind::LEARN_OK, &req.encode(), on_event)?;
        Ok(LearnReply::decode(&payload)?)
    }

    /// Learn-if-needed, fit and calibrate a model; blocks until the
    /// reply (no progress callback).
    pub fn fit(
        &mut self,
        strategy: StrategySpec,
        dataset: &Dataset,
        smoothing: f64,
        calibrate_threads: u16,
    ) -> Result<FitReply, ClientError> {
        self.fit_with_progress(strategy, dataset, smoothing, calibrate_threads, |_| true)
    }

    /// [`Client::fit`] by upload-once handle (see
    /// [`Client::learn_by_handle`]).
    pub fn fit_by_handle(
        &mut self,
        strategy: StrategySpec,
        handle: u64,
        smoothing: f64,
        calibrate_threads: u16,
    ) -> Result<FitReply, ClientError> {
        self.fit_ref(
            strategy,
            DatasetRef::Handle(handle),
            smoothing,
            calibrate_threads,
            |_| true,
        )
    }

    /// Fit a model, streaming progress events to `on_event`. Returning
    /// `false` cancels the job.
    pub fn fit_with_progress(
        &mut self,
        strategy: StrategySpec,
        dataset: &Dataset,
        smoothing: f64,
        calibrate_threads: u16,
        on_event: impl FnMut(&ProgressEvent) -> bool,
    ) -> Result<FitReply, ClientError> {
        self.fit_ref(
            strategy,
            DatasetRef::Inline(dataset.clone()),
            smoothing,
            calibrate_threads,
            on_event,
        )
    }

    fn fit_ref(
        &mut self,
        strategy: StrategySpec,
        dataset: DatasetRef,
        smoothing: f64,
        calibrate_threads: u16,
        on_event: impl FnMut(&ProgressEvent) -> bool,
    ) -> Result<FitReply, ClientError> {
        let req = FitRequest {
            strategy,
            dataset,
            smoothing,
            calibrate_threads,
        };
        let payload = self.roundtrip(kind::FIT, kind::FIT_OK, &req.encode(), on_event)?;
        Ok(FitReply::decode(&payload)?)
    }

    /// Answer a batch of posterior queries against a fitted model.
    pub fn infer(&mut self, model_id: u64, queries: Vec<Query>) -> Result<InferReply, ClientError> {
        let req = InferRequest { model_id, queries };
        let payload = self.roundtrip(kind::INFER, kind::INFER_OK, &req.encode(), |_| true)?;
        Ok(InferReply::decode(&payload)?)
    }

    /// Liveness + load snapshot.
    pub fn health(&mut self) -> Result<HealthReply, ClientError> {
        let payload = self.roundtrip(kind::HEALTH, kind::HEALTH_OK, &[], |_| true)?;
        Ok(HealthReply::decode(&payload)?)
    }

    /// Cumulative serving statistics.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        let payload = self.roundtrip(kind::STATS, kind::STATS_OK, &[], |_| true)?;
        Ok(StatsReply::decode(&payload)?)
    }

    /// A snapshot of the daemon's process-wide metrics registry.
    pub fn metrics(&mut self) -> Result<MetricsReply, ClientError> {
        let payload = self.roundtrip(kind::METRICS, kind::METRICS_OK, &[], |_| true)?;
        Ok(MetricsReply::decode(&payload)?)
    }

    /// The daemon's metrics rendered in the Prometheus text exposition
    /// format (what a scrape of `--metrics-addr` would return).
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        Ok(fastbn_obs::render_prometheus(
            &self.metrics()?.to_snapshot(),
        ))
    }

    /// Ask the daemon to shut down (acknowledged before it exits).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(kind::SHUTDOWN, kind::SHUTDOWN_OK, &[], |_| true)?;
        Ok(())
    }
}
