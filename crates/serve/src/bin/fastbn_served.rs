//! The `fastbn-served` daemon binary.
//!
//! ```text
//! fastbn-served [--addr HOST:PORT] [--runners N] [--queue N] [--cache N]
//!               [--cache-budget-mb N] [--metrics-addr HOST:PORT]
//! ```
//!
//! Serves the protocol in `docs/PROTOCOL.md` until a client sends a
//! `Shutdown` frame. Prints the bound address on stdout (useful with
//! `--addr 127.0.0.1:0`).
//!
//! With `--metrics-addr`, a second listener answers every connection
//! with a Prometheus text-format dump of the process-wide metrics
//! registry over HTTP and hangs up — enough for `curl` and any
//! Prometheus scraper. With `FASTBN_TRACE=1` in the environment, the
//! daemon prints the aggregated span-timing report to stderr when it
//! shuts down.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::process::exit;
use std::thread;

use fastbn_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: fastbn-served [--addr HOST:PORT] [--runners N] [--queue N] [--cache N] \
         [--cache-budget-mb N] [--metrics-addr HOST:PORT]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("fastbn-served: bad or missing value for {flag}");
            usage();
        }
    }
}

/// Answer each connection with one HTTP response carrying the current
/// Prometheus dump, then close. Runs forever on its own thread; the
/// daemon's shutdown simply exits the process with it.
fn metrics_loop(listener: TcpListener) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // Drain whatever request line arrived (we answer any of them).
        let mut buf = [0u8; 4096];
        let _ = stream.read(&mut buf);
        let body = fastbn_obs::render_prometheus(&fastbn_obs::global().snapshot());
        let response = format!(
            "HTTP/1.1 200 OK\r\ncontent-type: text/plain; version=0.0.4\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = stream.write_all(response.as_bytes());
    }
}

fn main() {
    let mut addr = "127.0.0.1:7733".to_string();
    let mut metrics_addr: Option<String> = None;
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(args.next(), "--addr"),
            "--runners" => cfg.runners = parse(args.next(), "--runners"),
            "--queue" => cfg.queue_capacity = parse(args.next(), "--queue"),
            "--cache" => cfg.cache_capacity = parse(args.next(), "--cache"),
            "--cache-budget-mb" => {
                let mb: usize = parse(args.next(), "--cache-budget-mb");
                cfg.cache_budget_bytes = mb.saturating_mul(1024 * 1024);
            }
            "--metrics-addr" => metrics_addr = Some(parse(args.next(), "--metrics-addr")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fastbn-served: unknown flag {other}");
                usage();
            }
        }
    }
    if let Some(maddr) = metrics_addr {
        let listener = match TcpListener::bind(&maddr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("fastbn-served: cannot bind metrics listener {maddr}: {e}");
                exit(1);
            }
        };
        println!(
            "fastbn-served metrics on {}",
            listener.local_addr().map_or(maddr, |a| a.to_string())
        );
        thread::spawn(move || metrics_loop(listener));
    }
    let server = match Server::bind(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fastbn-served: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!("fastbn-served listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("fastbn-served: {e}");
        exit(1);
    }
    fastbn_obs::print_report_if_traced("fastbn-served");
}
