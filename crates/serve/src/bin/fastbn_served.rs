//! The `fastbn-served` daemon binary.
//!
//! ```text
//! fastbn-served [--addr HOST:PORT] [--runners N] [--queue N] [--cache N]
//! ```
//!
//! Serves the protocol in `docs/PROTOCOL.md` until a client sends a
//! `Shutdown` frame. Prints the bound address on stdout (useful with
//! `--addr 127.0.0.1:0`).

use std::process::exit;

use fastbn_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!("usage: fastbn-served [--addr HOST:PORT] [--runners N] [--queue N] [--cache N]");
    exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("fastbn-served: bad or missing value for {flag}");
            usage();
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7733".to_string();
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(args.next(), "--addr"),
            "--runners" => cfg.runners = parse(args.next(), "--runners"),
            "--queue" => cfg.queue_capacity = parse(args.next(), "--queue"),
            "--cache" => cfg.cache_capacity = parse(args.next(), "--cache"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fastbn-served: unknown flag {other}");
                usage();
            }
        }
    }
    let server = match Server::bind(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fastbn-served: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    println!("fastbn-served listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("fastbn-served: {e}");
        exit(1);
    }
}
