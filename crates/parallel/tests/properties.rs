//! Property-based tests for the parallel substrate: no task lost, no task
//! duplicated, under arbitrary task shapes and thread counts.

use fastbn_parallel::{
    chunk_ranges, run_pool, run_steal_pool, shard_by_key, PerThread, StealPool, StepResult, Team,
    WorkPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pool_processes_every_step_exactly_once(
        sizes in proptest::collection::vec(1u32..20, 1..50),
        threads in 1usize..5,
    ) {
        let expected: u64 = sizes.iter().map(|&s| s as u64).sum();
        let tasks: Vec<(usize, u32)> = sizes.iter().copied().enumerate().collect();
        let n_tasks = tasks.len() as u64;
        let pool = WorkPool::from_tasks(tasks);
        let steps = AtomicU64::new(0);
        let dones = AtomicU64::new(0);
        Team::scoped(threads, |team| {
            run_pool(team, &pool, |_tid, (id, rem)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if rem == 1 {
                    dones.fetch_add(1, Ordering::Relaxed);
                    StepResult::Done
                } else {
                    StepResult::Continue((id, rem - 1))
                }
            });
        });
        prop_assert_eq!(steps.load(Ordering::SeqCst), expected);
        prop_assert_eq!(dones.load(Ordering::SeqCst), n_tasks);
        prop_assert!(pool.is_drained());
    }

    #[test]
    fn steal_pool_processes_every_step_exactly_once(
        sizes in proptest::collection::vec(1u32..20, 1..50),
        threads in 1usize..5,
        skew in 0usize..3,
    ) {
        // skew 0: balanced sharding by task id; skew 1: everything on one
        // shard (maximum stealing); skew 2: shard by id % 2 (partial skew).
        let expected: u64 = sizes.iter().map(|&s| s as u64).sum();
        let tasks: Vec<(usize, u32)> = sizes.iter().copied().enumerate().collect();
        let n_tasks = tasks.len() as u64;
        let shards = match skew {
            0 => shard_by_key(tasks, threads, |t| t.0, |t| t.1 as u64),
            1 => shard_by_key(tasks, threads, |_| 0, |t| t.1 as u64),
            _ => shard_by_key(tasks, threads, |t| t.0 % 2, |t| t.1 as u64),
        };
        let pool = StealPool::from_shards(shards);
        let steps = AtomicU64::new(0);
        let dones = AtomicU64::new(0);
        Team::scoped(threads, |team| {
            run_steal_pool(team, &pool, |_tid, (id, rem)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if rem == 1 {
                    dones.fetch_add(1, Ordering::Relaxed);
                    StepResult::Done
                } else {
                    StepResult::Continue((id, rem - 1))
                }
            });
        });
        prop_assert_eq!(steps.load(Ordering::SeqCst), expected);
        prop_assert_eq!(dones.load(Ordering::SeqCst), n_tasks);
        prop_assert!(pool.is_drained());
    }

    #[test]
    fn sharding_partitions_tasks(
        keys in proptest::collection::vec(0usize..12, 0..80),
        k in 1usize..9,
    ) {
        let tasks: Vec<(usize, usize)> = keys.iter().copied().enumerate().collect();
        let shards = shard_by_key(tasks.clone(), k, |t| t.1, |_| 1);
        prop_assert_eq!(shards.len(), k);
        // Every task appears exactly once.
        let mut flat: Vec<(usize, usize)> = shards.iter().flatten().copied().collect();
        flat.sort();
        prop_assert_eq!(flat, tasks);
        // Equal keys colocate.
        for key in 0..12 {
            let homes = shards
                .iter()
                .filter(|s| s.iter().any(|t| t.1 == key))
                .count();
            prop_assert!(homes <= 1, "key {} on {} shards", key, homes);
        }
    }

    #[test]
    fn chunks_partition_any_range(n in 0usize..5000, k in 1usize..64) {
        let chunks = chunk_ranges(n, k);
        // Covering, contiguous, balanced.
        let mut next = 0;
        for c in &chunks {
            prop_assert_eq!(c.start, next);
            next = c.end;
        }
        prop_assert_eq!(next, n);
        let min = chunks.iter().map(|c| c.len()).min().unwrap();
        let max = chunks.iter().map(|c| c.len()).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn per_thread_counters_merge_losslessly(
        increments in proptest::collection::vec(0u64..100, 1..8),
    ) {
        let n = increments.len();
        let counters: PerThread<u64> = PerThread::new(n);
        Team::scoped(n, |team| {
            team.broadcast(&|tid| {
                for _ in 0..increments[tid] {
                    counters.with(tid, |c| *c += 1);
                }
            });
        });
        let total = counters.fold(0, |a, b| a + b);
        prop_assert_eq!(total, increments.iter().sum::<u64>());
    }
}
