//! Per-thread accumulator slots.
//!
//! Fast-BNS's headline claim includes "no atomic operations" on the hot
//! path; statistics (CI-test counts, removal tallies) are therefore
//! accumulated in per-thread slots — each on its own cache line to avoid
//! false sharing — and merged once after the parallel region joins.

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

/// `n` independent, cache-padded slots of `T`, one per worker thread.
///
/// Workers access their own slot by thread id; the mutex is uncontended by
/// construction (only thread `tid` touches slot `tid` during a region) and
/// exists to make the aggregate `Sync` without `unsafe`.
pub struct PerThread<T> {
    slots: Vec<CachePadded<Mutex<T>>>,
}

impl<T: Default> PerThread<T> {
    /// Create `n` default-initialized slots.
    pub fn new(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n.max(1));
        slots.resize_with(n.max(1), || CachePadded::new(Mutex::new(T::default())));
        Self { slots }
    }
}

impl<T> PerThread<T> {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if there are no slots (never happens via `new`).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Mutate thread `tid`'s slot.
    #[inline]
    pub fn with<R>(&self, tid: usize, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.slots[tid].lock())
    }

    /// Consume the slots, folding them into an accumulator.
    pub fn fold<A>(self, init: A, mut f: impl FnMut(A, T) -> A) -> A {
        self.slots
            .into_iter()
            .fold(init, |acc, slot| f(acc, slot.into_inner().into_inner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;

    #[test]
    fn slots_accumulate_independently_and_merge() {
        let counters: PerThread<u64> = PerThread::new(4);
        Team::scoped(4, |team| {
            team.broadcast(&|tid| {
                for _ in 0..100 {
                    counters.with(tid, |c| *c += tid as u64 + 1);
                }
            });
        });
        let total = counters.fold(0u64, |a, b| a + b);
        assert_eq!(total, 100 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn zero_slots_promoted_to_one() {
        let c: PerThread<u32> = PerThread::new(0);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        c.with(0, |v| *v = 42);
        assert_eq!(c.fold(0, |a, b| a + b), 42);
    }

    #[test]
    fn non_copy_payloads_supported() {
        let c: PerThread<Vec<usize>> = PerThread::new(3);
        for tid in 0..3 {
            c.with(tid, |v| v.push(tid * 10));
        }
        let mut all = c.fold(Vec::new(), |mut acc, v| {
            acc.extend(v);
            acc
        });
        all.sort_unstable();
        assert_eq!(all, vec![0, 10, 20]);
    }
}
