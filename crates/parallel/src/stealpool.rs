//! Work-stealing sharded task pool — the scalable successor to the single
//! shared-stack [`crate::workpool::WorkPool`].
//!
//! The paper's dynamic work pool (§IV-B) is one mutex-protected stack. That
//! is fine at 2–8 threads on mid-sized networks, but on the 1000-node Munin
//! workloads every pop/requeue crosses the same lock, and the lock becomes
//! the scheduler's serial section. This module shards the pool: each worker
//! owns a deque, pushes and pops at its **back** (LIFO, so the most
//! recently touched edge — whose data columns are still cache-warm — is
//! processed next), and only when its own deque runs dry does it **steal**
//! from the **front** of a victim's deque (FIFO, so the thief takes the
//! oldest task, the one least likely to be warm in the victim's cache and
//! statistically the one with the most remaining work).
//!
//! Invariants shared with `WorkPool`:
//!
//! * a task outside every deque is accounted in `in_flight`, so
//!   [`StealPool::is_drained`] can never observe "empty and idle" while a
//!   worker still holds (and may requeue) a task;
//! * the pop → process-group → requeue/complete protocol is identical, so
//!   [`run_steal_pool`] is a drop-in replacement for
//!   [`crate::workpool::run_pool`] and produces the same set of completed
//!   steps regardless of shard count, thread count or steal interleaving.

use crate::team::Team;
use crossbeam::utils::CachePadded;
use fastbn_obs::counter;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A sharded pool of tasks of type `T` with per-owner deques and stealing.
pub struct StealPool<T> {
    /// One deque per shard, cache-padded so two workers touching adjacent
    /// shards never share a line.
    shards: Box<[CachePadded<Mutex<VecDeque<T>>>]>,
    /// Tasks currently held by workers (popped but neither requeued nor
    /// completed).
    in_flight: AtomicUsize,
    /// Successful steals (diagnostic; relaxed).
    steals: AtomicUsize,
}

impl<T> StealPool<T> {
    /// An empty pool with `n_shards` deques (0 is promoted to 1).
    pub fn new(n_shards: usize) -> Self {
        Self::from_shards((0..n_shards.max(1)).map(|_| Vec::new()).collect())
    }

    /// A pool pre-loaded shard by shard — the per-depth initialization once
    /// the partitioner ([`crate::partition::shard_by_key`]) has assigned
    /// every edge task an owner.
    pub fn from_shards(shards: Vec<Vec<T>>) -> Self {
        let shards: Vec<CachePadded<Mutex<VecDeque<T>>>> = if shards.is_empty() {
            vec![CachePadded::new(Mutex::new(VecDeque::new()))]
        } else {
            shards
                .into_iter()
                .map(|s| CachePadded::new(Mutex::new(VecDeque::from(s))))
                .collect()
        };
        Self {
            shards: shards.into_boxed_slice(),
            in_flight: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        }
    }

    /// Number of shards (≥ 1).
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total queued tasks across all shards (tasks not held by workers).
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Successful steals so far (monotonic, diagnostic only).
    pub fn steal_count(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// Pop a task for worker `tid`: first the back of its own deque, then —
    /// if that is empty — the front of each victim in round-robin order
    /// starting after `tid`. The returned task is marked in-flight. `None`
    /// means every deque was observed empty (the pool may still not be
    /// [`StealPool::is_drained`] if another worker holds a task).
    pub fn pop(&self, tid: usize) -> Option<T> {
        let n = self.shards.len();
        let own = tid % n;
        // Mark in-flight *before* touching any deque so a concurrent
        // `is_drained` between our pop and our processing cannot observe
        // "empty and idle".
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        if let Some(task) = self.shards[own].lock().pop_back() {
            return Some(task);
        }
        for k in 1..n {
            let victim = (own + k) % n;
            if let Some(task) = self.shards[victim].lock().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                counter!("fastbn.parallel.steal.steals").inc();
                return Some(task);
            }
        }
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        None
    }

    /// Return a partially processed task to worker `tid`'s own deque. The
    /// task stays in-flight accounting-wise until the push completes, so no
    /// drain window opens; it lands at the back, where `tid` will pop it
    /// next (cache-warm continuation) unless a thief gets there first.
    pub fn requeue(&self, tid: usize, task: T) {
        self.shards[tid % self.shards.len()].lock().push_back(task);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Mark a popped task as finished.
    pub fn complete_one(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Add a brand-new task (never popped) to `shard`'s deque.
    pub fn inject(&self, shard: usize, task: T) {
        counter!("fastbn.parallel.steal.injects").inc();
        self.shards[shard % self.shards.len()]
            .lock()
            .push_back(task);
    }

    /// True when every deque is empty and no task is in flight.
    pub fn is_drained(&self) -> bool {
        // Read in_flight first: a task between pop and requeue keeps
        // in_flight > 0, so the subsequent emptiness check cannot race into
        // a false "drained".
        self.in_flight.load(Ordering::Acquire) == 0
            && self.shards.iter().all(|s| s.lock().is_empty())
    }
}

/// What a processing step decided about its task (shared with the facade
/// pool; re-exported from [`crate::workpool`]).
pub use crate::workpool::StepResult;

/// Drive a sharded pool to completion on `team`: every worker loops
/// pop-or-steal → `step` → requeue/complete until the pool drains.
///
/// Same contract as [`crate::workpool::run_pool`], with shard-aware popping:
/// worker `tid` drains its own deque LIFO and steals FIFO when idle.
pub fn run_steal_pool<T, F>(team: &Team<'_>, pool: &StealPool<T>, step: F)
where
    T: Send,
    F: Fn(usize, T) -> StepResult<T> + Sync,
{
    team.broadcast(&|tid| loop {
        match pool.pop(tid) {
            Some(task) => match step(tid, task) {
                StepResult::Continue(t) => pool.requeue(tid, t),
                StepResult::Done => pool.complete_one(),
            },
            None => {
                if pool.is_drained() {
                    return;
                }
                // Idle spin: nothing to pop or steal, but the pool is not
                // drained yet. Each yield is one counted idle beat — the
                // load-imbalance signal the steal scheduler exists to fix.
                counter!("fastbn.parallel.steal.idle_yields").inc();
                std::thread::yield_now();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn own_shard_is_lifo() {
        let pool = StealPool::from_shards(vec![vec![1, 2, 3], vec![10]]);
        assert_eq!(pool.n_shards(), 2);
        assert_eq!(pool.queued(), 4);
        assert_eq!(pool.pop(0), Some(3), "owner pops its own back");
        assert_eq!(pool.pop(0), Some(2));
        pool.complete_one();
        pool.complete_one();
    }

    #[test]
    fn empty_own_shard_steals_oldest_from_victim() {
        let pool = StealPool::from_shards(vec![vec![1, 2, 3], vec![]]);
        // Worker 1's deque is empty: it must steal shard 0's *front* (the
        // oldest task), not the back the owner is working from.
        assert_eq!(pool.pop(1), Some(1));
        assert_eq!(pool.steal_count(), 1);
        // The owner is unaffected at its end.
        assert_eq!(pool.pop(0), Some(3));
        assert_eq!(pool.steal_count(), 1, "owner pop is not a steal");
        pool.complete_one();
        pool.complete_one();
    }

    #[test]
    fn empty_steal_returns_none_without_leaking_in_flight() {
        let pool: StealPool<u32> = StealPool::new(4);
        assert!(pool.is_drained());
        for tid in 0..4 {
            assert_eq!(pool.pop(tid), None, "tid {tid}");
        }
        // A failed pop/steal sweep must not leave phantom in-flight tasks.
        assert!(pool.is_drained());
    }

    #[test]
    fn self_steal_is_impossible() {
        // A single-shard pool: the steal sweep has no victims, so a pop on
        // the empty deque returns None instead of double-popping itself.
        let pool = StealPool::from_shards(vec![vec![7u32]]);
        assert_eq!(pool.pop(0), Some(7));
        assert_eq!(pool.pop(0), None, "no victim to steal from");
        assert!(!pool.is_drained(), "task 7 is still in flight");
        pool.complete_one();
        assert!(pool.is_drained());
    }

    #[test]
    fn requeue_lands_on_own_shard() {
        let pool = StealPool::from_shards(vec![vec![], vec![1u32]]);
        let t = pool.pop(1).unwrap();
        pool.requeue(0, t); // worker 0 stole it and requeues to *its* deque
        assert_eq!(pool.pop(0), Some(1), "requeued task is local to worker 0");
        pool.complete_one();
        assert!(pool.is_drained());
    }

    #[test]
    fn in_flight_blocks_drain_until_completion() {
        let pool = StealPool::from_shards(vec![vec![1u32], vec![]]);
        let t = pool.pop(0).unwrap();
        assert_eq!(pool.queued(), 0);
        assert!(!pool.is_drained(), "held task blocks drain");
        pool.requeue(0, t);
        assert!(!pool.is_drained(), "requeued task blocks drain");
        let t = pool.pop(0).unwrap();
        let _ = t;
        pool.complete_one();
        assert!(pool.is_drained());
    }

    #[test]
    fn tid_out_of_range_wraps() {
        let pool = StealPool::from_shards(vec![vec![1u32], vec![2]]);
        // tid 5 on 2 shards owns shard 1.
        assert_eq!(pool.pop(5), Some(2));
        pool.complete_one();
    }

    #[test]
    fn every_unit_of_work_is_processed_exactly_once_with_stealing() {
        // Heavily skewed shards: shard 0 holds everything, three other
        // workers must live off steals. Total step executions must equal the
        // sum of task sizes and every task must complete exactly once.
        let n_tasks = 64usize;
        let tasks: Vec<(usize, u32)> = (0..n_tasks).map(|i| (i, 1 + (i as u32 * 7) % 13)).collect();
        let expected_steps: u64 = tasks.iter().map(|&(_, s)| s as u64).sum();
        let pool = StealPool::from_shards(vec![tasks, Vec::new(), Vec::new(), Vec::new()]);
        let steps = AtomicU64::new(0);
        let completions = AtomicU64::new(0);
        Team::scoped(4, |team| {
            run_steal_pool(team, &pool, |_tid, (id, remaining)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if remaining == 1 {
                    completions.fetch_add(1, Ordering::Relaxed);
                    StepResult::Done
                } else {
                    StepResult::Continue((id, remaining - 1))
                }
            });
        });
        assert_eq!(steps.load(Ordering::SeqCst), expected_steps);
        assert_eq!(completions.load(Ordering::SeqCst), n_tasks as u64);
        assert!(pool.is_drained());
    }

    #[test]
    fn more_threads_than_shards_still_drains() {
        let tasks: Vec<(usize, u32)> = (0..20).map(|i| (i, 3u32)).collect();
        let pool = StealPool::from_shards(vec![tasks.clone(), tasks]);
        let steps = AtomicU64::new(0);
        Team::scoped(5, |team| {
            run_steal_pool(team, &pool, |_tid, (id, rem)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if rem == 1 {
                    StepResult::Done
                } else {
                    StepResult::Continue((id, rem - 1))
                }
            });
        });
        assert_eq!(steps.load(Ordering::SeqCst), 2 * 20 * 3);
        assert!(pool.is_drained());
    }

    #[test]
    fn inject_wraps_shard_index() {
        let pool: StealPool<u32> = StealPool::new(2);
        pool.inject(0, 1);
        pool.inject(3, 2); // lands on shard 1
        assert_eq!(pool.queued(), 2);
        assert_eq!(pool.pop(1), Some(2));
        pool.complete_one();
    }
}
