//! # fastbn-parallel — parallel substrate for Fast-BNS
//!
//! The paper implements its three parallelism granularities with OpenMP;
//! this crate provides the equivalent runtime pieces in Rust, from scratch:
//!
//! * [`team`] — a scoped worker **team**: `n` threads spawned once per
//!   parallel region that repeatedly execute broadcast jobs. This is the
//!   analogue of an OpenMP parallel region, amortizing thread start-up the
//!   same way (critical for a fair sample-level-parallelism baseline, which
//!   launches one job per CI test),
//! * [`stealpool`] — a **work-stealing sharded pool**: one deque per
//!   worker (LIFO at the owner's end, FIFO for thieves) with the same
//!   in-flight drain protocol, which removes the single shared lock from
//!   the scheduling hot path on wide networks,
//! * [`workpool`] — the paper's **dynamic work pool** (§IV-B): a shared
//!   LIFO of tasks with an in-flight count, plus a [`workpool::run_pool`]
//!   driver that runs the pop → process-group → requeue loop on a team;
//!   kept as a single-shard facade over [`stealpool::StealPool`] so the
//!   paper-faithful `ci_par` scheduler retains exact single-queue
//!   semantics,
//! * [`partition`] — balanced contiguous range splitting (edge-level and
//!   sample-level static scheduling) and adjacency sharding by owner key
//!   for seeding the stealing deques,
//! * [`counters`] — per-thread accumulator slots (cache-padded) so workers
//!   can count CI tests without sharing cache lines, merged after a join;
//!   this is how Fast-BNS collects statistics while staying atomic-free on
//!   the hot path,
//! * [`jobs`] — the **serving-side job layer**: a bounded FIFO
//!   [`jobs::JobPool`] of cancellable jobs drained by long-lived runner
//!   threads, each job free to open its own scoped [`Team`] region. This
//!   is what `fastbn-serve` multiplexes client requests onto.

pub mod counters;
pub mod jobs;
pub mod partition;
pub mod stealpool;
pub mod team;
pub mod workpool;

pub use counters::PerThread;
pub use jobs::{CancelToken, JobHandle, JobPool, QueueFull};
pub use partition::{chunk_ranges, shard_by_key};
pub use stealpool::{run_steal_pool, StealPool};
pub use team::Team;
pub use workpool::{run_pool, StepResult, WorkPool};
