//! The dynamic work pool (paper §IV-B), now a single-shard facade over the
//! work-stealing [`crate::stealpool::StealPool`].
//!
//! A shared LIFO stack of tasks plus an in-flight counter. Workers
//! repeatedly *pop* a task, process its next group of work (e.g. `gs` CI
//! tests of an edge), and either *complete* it or *requeue* it with
//! updated progress. The pool is drained when the stack is empty **and** no
//! task is held by a worker — tracking in-flight tasks is what lets an edge
//! be popped, partially processed, and returned without another thread
//! prematurely concluding the depth is finished.
//!
//! The paper implements the pool as a stack; LIFO order keeps recently
//! touched edges (and their data columns) warm in cache. The sharded pool
//! generalizes that to one stack per worker with FIFO stealing; this type
//! pins the shard count to 1 so existing callers (and the paper-faithful
//! `ci_par` scheduler) keep the exact single-queue semantics.
//!
//! # Naming
//!
//! Two distinct pushes used to share a confusable `push_*` prefix; they are
//! now named for their accounting effect:
//!
//! * [`WorkPool::requeue`] — return a task that was previously **popped**
//!   (it is in-flight; requeuing transfers it back to the queue and ends
//!   its in-flight accounting),
//! * [`WorkPool::inject`] — add a **brand-new** task that was never popped
//!   (no in-flight accounting is touched).
//!
//! Calling the wrong one corrupts the drain protocol: `inject` of a popped
//! task leaks an in-flight count (the pool never drains), `requeue` of a
//! fresh task underflows it. The old `push_back`/`push_new` names did not
//! say which side of that contract they were on.

use crate::stealpool::{run_steal_pool, StealPool};
use crate::team::Team;

/// A dynamic pool of tasks of type `T` behind a single shared LIFO queue.
pub struct WorkPool<T> {
    inner: StealPool<T>,
}

impl<T> WorkPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            inner: StealPool::new(1),
        }
    }

    /// A pool pre-loaded with tasks (the per-depth initialization: "all the
    /// edges in the current graph are pushed into the work pool").
    pub fn from_tasks(tasks: Vec<T>) -> Self {
        Self {
            inner: StealPool::from_shards(vec![tasks]),
        }
    }

    /// Pop a task, marking it in-flight. `None` means the stack is
    /// currently empty (the pool may still not be [`WorkPool::is_drained`]).
    pub fn pop(&self) -> Option<T> {
        self.inner.pop(0)
    }

    /// Return a previously popped, partially processed task to the pool.
    /// The task stays in-flight accounting-wise until the push completes,
    /// so no drain window opens.
    pub fn requeue(&self, task: T) {
        self.inner.requeue(0, task)
    }

    /// Mark a popped task as finished.
    pub fn complete_one(&self) {
        self.inner.complete_one()
    }

    /// Add a brand-new task that was never popped (no in-flight accounting).
    pub fn inject(&self, task: T) {
        self.inner.inject(0, task)
    }

    /// Current queue length (tasks not held by any worker).
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// True when the queue is empty and no task is in flight.
    pub fn is_drained(&self) -> bool {
        self.inner.is_drained()
    }
}

impl<T> Default for WorkPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// What a processing step decided about its task.
pub enum StepResult<T> {
    /// The task has more work; return it to the pool.
    Continue(T),
    /// The task is finished.
    Done,
}

/// Drive a pool to completion on `team`: every worker loops
/// pop → `step` → requeue/complete until the pool drains.
///
/// `step(tid, task)` processes one group of work and decides the task's
/// fate. This is exactly the paper's CI-level scheduling loop, generic over
/// the task type so it can be property-tested in isolation.
pub fn run_pool<T, F>(team: &Team<'_>, pool: &WorkPool<T>, step: F)
where
    T: Send,
    F: Fn(usize, T) -> StepResult<T> + Sync,
{
    run_steal_pool(team, &pool.inner, step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn pool_basics() {
        let pool = WorkPool::from_tasks(vec![1, 2, 3]);
        assert_eq!(pool.queued(), 3);
        assert!(!pool.is_drained());
        let t = pool.pop().unwrap();
        assert_eq!(t, 3, "LIFO order");
        assert!(!pool.is_drained(), "in-flight task blocks drain");
        pool.requeue(t);
        assert_eq!(pool.queued(), 3);
        for _ in 0..3 {
            pool.pop().unwrap();
            pool.complete_one();
        }
        assert!(pool.pop().is_none());
        assert!(pool.is_drained());
    }

    #[test]
    fn every_unit_of_work_is_processed_exactly_once() {
        // Tasks carry (id, remaining_steps); each step decrements. Total
        // step executions must equal the sum of initial steps, and each
        // task must complete exactly once.
        let n_tasks = 64;
        let tasks: Vec<(usize, u32)> = (0..n_tasks).map(|i| (i, 1 + (i as u32 * 7) % 13)).collect();
        let expected_steps: u64 = tasks.iter().map(|&(_, s)| s as u64).sum();
        let pool = WorkPool::from_tasks(tasks);
        let steps = AtomicU64::new(0);
        let completions = AtomicU64::new(0);
        Team::scoped(4, |team| {
            run_pool(team, &pool, |_tid, (id, remaining)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if remaining == 1 {
                    completions.fetch_add(1, Ordering::Relaxed);
                    StepResult::Done
                } else {
                    StepResult::Continue((id, remaining - 1))
                }
            });
        });
        assert_eq!(steps.load(Ordering::SeqCst), expected_steps);
        assert_eq!(completions.load(Ordering::SeqCst), n_tasks as u64);
        assert!(pool.is_drained());
    }

    #[test]
    fn uneven_tasks_are_load_balanced() {
        // One huge task and many tiny ones with 2 threads: the huge task
        // must not serialize the tiny ones (they complete while it cycles).
        // We only assert total correctness here; timing properties are
        // exercised by the benches.
        let mut tasks = vec![(0usize, 200u32)];
        tasks.extend((1..40).map(|i| (i, 1u32)));
        let total: u64 = tasks.iter().map(|&(_, s)| s as u64).sum();
        let pool = WorkPool::from_tasks(tasks);
        let steps = AtomicU64::new(0);
        Team::scoped(2, |team| {
            run_pool(team, &pool, |_t, (id, rem)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if rem == 1 {
                    StepResult::Done
                } else {
                    StepResult::Continue((id, rem - 1))
                }
            });
        });
        assert_eq!(steps.load(Ordering::SeqCst), total);
    }

    #[test]
    fn empty_pool_drains_immediately() {
        let pool: WorkPool<u32> = WorkPool::new();
        Team::scoped(3, |team| {
            run_pool(team, &pool, |_t, _task| StepResult::Done);
        });
        assert!(pool.is_drained());
    }

    #[test]
    fn inject_grows_the_pool() {
        let pool = WorkPool::new();
        pool.inject(1u32);
        pool.inject(2);
        assert_eq!(pool.queued(), 2);
        assert!(!pool.is_drained());
    }

    #[test]
    fn inject_does_not_touch_in_flight_accounting() {
        // inject is for brand-new tasks: a drain must require only the
        // queue to empty, with no phantom in-flight count to cancel.
        let pool = WorkPool::new();
        pool.inject(1u32);
        let t = pool.pop().unwrap();
        pool.inject(t + 1); // WRONG for a popped task — leaks in-flight...
        pool.pop().unwrap();
        pool.complete_one(); // ...so two completes are needed for one inject
        pool.complete_one();
        assert!(pool.is_drained());
    }

    #[test]
    fn completion_counting_balances_pops() {
        // complete_one must pair 1:1 with pops that are not requeued.
        let pool = WorkPool::from_tasks(vec![1u32, 2, 3]);
        let a = pool.pop().unwrap();
        let b = pool.pop().unwrap();
        pool.requeue(a);
        pool.complete_one(); // finishes b
        let _ = b;
        assert_eq!(pool.queued(), 2);
        assert!(!pool.is_drained());
        pool.pop().unwrap();
        pool.complete_one();
        pool.pop().unwrap();
        pool.complete_one();
        assert!(pool.pop().is_none());
        assert!(pool.is_drained());
    }

    #[test]
    fn single_thread_run_pool_works() {
        let pool = WorkPool::from_tasks(vec![(0usize, 5u32)]);
        let steps = AtomicU64::new(0);
        Team::scoped(1, |team| {
            run_pool(team, &pool, |_t, (id, rem)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if rem == 1 {
                    StepResult::Done
                } else {
                    StepResult::Continue((id, rem - 1))
                }
            });
        });
        assert_eq!(steps.load(Ordering::SeqCst), 5);
    }
}
