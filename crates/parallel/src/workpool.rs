//! The dynamic work pool (paper §IV-B).
//!
//! A shared LIFO stack of tasks plus an in-flight counter. Workers
//! repeatedly *pop* a task, process its next group of work (e.g. `gs` CI
//! tests of an edge), and either *complete* it or *push it back* with
//! updated progress. The pool is drained when the stack is empty **and** no
//! task is held by a worker — tracking in-flight tasks is what lets an edge
//! be popped, partially processed, and returned without another thread
//! prematurely concluding the depth is finished.
//!
//! The paper implements the pool as a stack; LIFO order keeps recently
//! touched edges (and their data columns) warm in cache.

use crate::team::Team;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A dynamic pool of tasks of type `T`.
pub struct WorkPool<T> {
    stack: Mutex<Vec<T>>,
    in_flight: AtomicUsize,
}

impl<T> WorkPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            stack: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// A pool pre-loaded with tasks (the per-depth initialization: "all the
    /// edges in the current graph are pushed into the work pool").
    pub fn from_tasks(tasks: Vec<T>) -> Self {
        Self {
            stack: Mutex::new(tasks),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Pop a task, marking it in-flight. `None` means the stack is
    /// currently empty (the pool may still not be [`WorkPool::is_drained`]).
    pub fn pop(&self) -> Option<T> {
        // Optimistically mark in-flight *before* popping so a concurrent
        // `is_drained` between our pop and our processing cannot observe
        // "empty and idle".
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let task = self.stack.lock().pop();
        if task.is_none() {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
        task
    }

    /// Return a partially processed task to the pool (keeps it in-flight
    /// accounting-wise until the push completes, so no drain window opens).
    pub fn push_back(&self, task: T) {
        self.stack.lock().push(task);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Mark a popped task as finished.
    pub fn complete_one(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Add a brand-new task (not previously popped).
    pub fn push_new(&self, task: T) {
        self.stack.lock().push(task);
    }

    /// Current stack length (tasks not held by any worker).
    pub fn queued(&self) -> usize {
        self.stack.lock().len()
    }

    /// True when the stack is empty and no task is in flight.
    pub fn is_drained(&self) -> bool {
        // Order matters: read in_flight first; a task between pop and
        // push_back keeps in_flight > 0.
        self.in_flight.load(Ordering::Acquire) == 0 && self.stack.lock().is_empty()
    }
}

impl<T> Default for WorkPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// What a processing step decided about its task.
pub enum StepResult<T> {
    /// The task has more work; return it to the pool.
    Continue(T),
    /// The task is finished.
    Done,
}

/// Drive a pool to completion on `team`: every worker loops
/// pop → `step` → push-back/complete until the pool drains.
///
/// `step(tid, task)` processes one group of work and decides the task's
/// fate. This is exactly the paper's CI-level scheduling loop, generic over
/// the task type so it can be property-tested in isolation.
pub fn run_pool<T, F>(team: &Team<'_>, pool: &WorkPool<T>, step: F)
where
    T: Send,
    F: Fn(usize, T) -> StepResult<T> + Sync,
{
    team.broadcast(&|tid| loop {
        match pool.pop() {
            Some(task) => match step(tid, task) {
                StepResult::Continue(t) => pool.push_back(t),
                StepResult::Done => pool.complete_one(),
            },
            None => {
                if pool.is_drained() {
                    return;
                }
                std::thread::yield_now();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_basics() {
        let pool = WorkPool::from_tasks(vec![1, 2, 3]);
        assert_eq!(pool.queued(), 3);
        assert!(!pool.is_drained());
        let t = pool.pop().unwrap();
        assert_eq!(t, 3, "LIFO order");
        assert!(!pool.is_drained(), "in-flight task blocks drain");
        pool.push_back(t);
        assert_eq!(pool.queued(), 3);
        for _ in 0..3 {
            pool.pop().unwrap();
            pool.complete_one();
        }
        assert!(pool.pop().is_none());
        assert!(pool.is_drained());
    }

    #[test]
    fn every_unit_of_work_is_processed_exactly_once() {
        // Tasks carry (id, remaining_steps); each step decrements. Total
        // step executions must equal the sum of initial steps, and each
        // task must complete exactly once.
        let n_tasks = 64;
        let tasks: Vec<(usize, u32)> = (0..n_tasks).map(|i| (i, 1 + (i as u32 * 7) % 13)).collect();
        let expected_steps: u64 = tasks.iter().map(|&(_, s)| s as u64).sum();
        let pool = WorkPool::from_tasks(tasks);
        let steps = AtomicU64::new(0);
        let completions = AtomicU64::new(0);
        Team::scoped(4, |team| {
            run_pool(team, &pool, |_tid, (id, remaining)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if remaining == 1 {
                    completions.fetch_add(1, Ordering::Relaxed);
                    StepResult::Done
                } else {
                    StepResult::Continue((id, remaining - 1))
                }
            });
        });
        assert_eq!(steps.load(Ordering::SeqCst), expected_steps);
        assert_eq!(completions.load(Ordering::SeqCst), n_tasks as u64);
        assert!(pool.is_drained());
    }

    #[test]
    fn uneven_tasks_are_load_balanced() {
        // One huge task and many tiny ones with 2 threads: the huge task
        // must not serialize the tiny ones (they complete while it cycles).
        // We only assert total correctness here; timing properties are
        // exercised by the benches.
        let mut tasks = vec![(0usize, 200u32)];
        tasks.extend((1..40).map(|i| (i, 1u32)));
        let total: u64 = tasks.iter().map(|&(_, s)| s as u64).sum();
        let pool = WorkPool::from_tasks(tasks);
        let steps = AtomicU64::new(0);
        Team::scoped(2, |team| {
            run_pool(team, &pool, |_t, (id, rem)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if rem == 1 {
                    StepResult::Done
                } else {
                    StepResult::Continue((id, rem - 1))
                }
            });
        });
        assert_eq!(steps.load(Ordering::SeqCst), total);
    }

    #[test]
    fn empty_pool_drains_immediately() {
        let pool: WorkPool<u32> = WorkPool::new();
        Team::scoped(3, |team| {
            run_pool(team, &pool, |_t, _task| StepResult::Done);
        });
        assert!(pool.is_drained());
    }

    #[test]
    fn push_new_grows_the_pool() {
        let pool = WorkPool::new();
        pool.push_new(1u32);
        pool.push_new(2);
        assert_eq!(pool.queued(), 2);
        assert!(!pool.is_drained());
    }

    #[test]
    fn single_thread_run_pool_works() {
        let pool = WorkPool::from_tasks(vec![(0usize, 5u32)]);
        let steps = AtomicU64::new(0);
        Team::scoped(1, |team| {
            run_pool(team, &pool, |_t, (id, rem)| {
                steps.fetch_add(1, Ordering::Relaxed);
                if rem == 1 {
                    StepResult::Done
                } else {
                    StepResult::Continue((id, rem - 1))
                }
            });
        });
        assert_eq!(steps.load(Ordering::SeqCst), 5);
    }
}
