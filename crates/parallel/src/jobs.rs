//! Long-lived job execution: a bounded FIFO queue of cancellable jobs
//! drained by a fixed team of runner threads.
//!
//! The worker [`crate::Team`] is *scoped*: it exists for one parallel
//! region and cannot outlive the closure that spawned it. A serving
//! process needs the opposite shape — a queue that outlives every request
//! and a stable set of runners that execute jobs submitted from many
//! connection threads. [`JobPool`] provides that shape while staying
//! compatible with the scoped substrate: each job runs *on one runner
//! thread* and is free to open its own `Team::scoped` region internally
//! (which is exactly what the structure learners do), so a pool of `r`
//! runners with `t`-thread jobs uses up to `r·t` worker threads at peak.
//!
//! Three properties the serving layer builds on:
//!
//! * **Bounded admission.** [`JobPool::submit`] never blocks: when the
//!   queue is at capacity it returns [`QueueFull`] immediately, which the
//!   daemon translates into an explicit `Busy` rejection instead of
//!   unbounded buffering.
//! * **FIFO fairness.** A single shared queue drained in arrival order —
//!   jobs from many clients interleave in the order they were admitted,
//!   never starved by a chatty connection.
//! * **Cooperative cancellation.** Every job receives a [`CancelToken`];
//!   the matching [`JobHandle`] can flip it at any time. Cancellation is
//!   advisory — the job observes the token at its own safe points (the
//!   learners poll it from their progress callbacks) and winds down with
//!   a consistent partial result.

use fastbn_obs::{counter, gauge, histogram};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A cloneable cooperative-cancellation flag shared between a job and its
/// [`JobHandle`]. Flipping it never interrupts anything by force; code
/// that wants to be cancellable polls [`CancelToken::is_cancelled`] at
/// its own safe points.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation (idempotent, races harmlessly).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Error returned by [`JobPool::submit`] when the bounded queue is at
/// capacity — the caller's signal to reject the work explicitly rather
/// than buffer it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue is at capacity")
    }
}

impl std::error::Error for QueueFull {}

/// Completion latch shared by a job and its handle.
struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Self {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn open(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }

    fn is_open(&self) -> bool {
        *self.done.lock()
    }
}

/// The caller's view of one submitted job: its queue-assigned id, a way
/// to request cancellation, and a completion latch to poll or block on.
pub struct JobHandle {
    id: u64,
    cancel: CancelToken,
    latch: Arc<Latch>,
}

impl JobHandle {
    /// The pool-unique id assigned at submission (monotonically
    /// increasing in admission order — comparing ids recovers FIFO
    /// position).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's cancellation token (cloneable; the job received the same
    /// one as its argument).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Request cooperative cancellation of the job.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Has the job finished running (normally or after cancellation)?
    pub fn is_finished(&self) -> bool {
        self.latch.is_open()
    }

    /// Block until the job has finished running.
    pub fn wait(&self) {
        self.latch.wait();
    }
}

/// One queued unit of work.
struct QueuedJob {
    cancel: CancelToken,
    latch: Arc<Latch>,
    work: Box<dyn FnOnce(&CancelToken) + Send>,
    /// Admission time, for the queue-wait histogram.
    submitted_at: Instant,
}

/// Shared pool state.
struct PoolInner {
    queue: Mutex<VecDeque<QueuedJob>>,
    /// Wakes idle runners on submit and on shutdown.
    available: Condvar,
    shutdown: AtomicBool,
    queue_cap: usize,
    next_id: AtomicU64,
    running: AtomicU64,
    completed: AtomicU64,
    /// Submissions rejected because the queue was at capacity — the
    /// admission-tuning signal the serving layer reports.
    busy_rejections: AtomicU64,
}

/// A fixed team of runner threads draining a bounded FIFO job queue.
///
/// Dropping the pool initiates shutdown: already-queued jobs still run to
/// completion (with their cancellation tokens flipped so cooperative jobs
/// finish fast), then the runners exit and are joined.
///
/// ```
/// use fastbn_parallel::JobPool;
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
///
/// let pool = JobPool::new(2, 8);
/// let hits = Arc::new(AtomicU32::new(0));
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let hits = hits.clone();
///         pool.submit(move |_cancel| {
///             hits.fetch_add(1, Ordering::Relaxed);
///         })
///         .unwrap()
///     })
///     .collect();
/// for h in &handles {
///     h.wait();
/// }
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct JobPool {
    inner: Arc<PoolInner>,
    runners: Vec<JoinHandle<()>>,
}

impl JobPool {
    /// A pool with `runners` runner threads (min 1) and room for
    /// `queue_cap` *queued* jobs (min 1; jobs already picked up by a
    /// runner no longer count against the cap).
    pub fn new(runners: usize, queue_cap: usize) -> Self {
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_cap: queue_cap.max(1),
            next_id: AtomicU64::new(0),
            running: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
        });
        let runners = (0..runners.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fastbn-job-runner-{i}"))
                    .spawn(move || runner_loop(&inner))
                    .expect("spawn job runner")
            })
            .collect();
        Self { inner, runners }
    }

    /// Admit `work` at the back of the queue, or reject it with
    /// [`QueueFull`] when the queue is at capacity. Never blocks.
    ///
    /// The job runs on one runner thread with its [`CancelToken`] as the
    /// argument; it should poll the token at its safe points.
    pub fn submit(
        &self,
        work: impl FnOnce(&CancelToken) + Send + 'static,
    ) -> Result<JobHandle, QueueFull> {
        let cancel = CancelToken::new();
        let latch = Arc::new(Latch::new());
        {
            let mut queue = self.inner.queue.lock();
            if queue.len() >= self.inner.queue_cap {
                self.inner.busy_rejections.fetch_add(1, Ordering::Relaxed);
                counter!("fastbn.parallel.jobs.busy_rejections").inc();
                return Err(QueueFull);
            }
            queue.push_back(QueuedJob {
                cancel: cancel.clone(),
                latch: Arc::clone(&latch),
                work: Box::new(work),
                submitted_at: Instant::now(),
            });
            gauge!("fastbn.parallel.jobs.queue_depth").set(queue.len() as i64);
        }
        self.inner.available.notify_one();
        Ok(JobHandle {
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            cancel,
            latch,
        })
    }

    /// Jobs admitted but not yet picked up by a runner.
    pub fn queued(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Jobs currently executing on a runner.
    pub fn running(&self) -> u64 {
        self.inner.running.load(Ordering::Relaxed)
    }

    /// Jobs that have finished executing (normally or cancelled).
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Cumulative submissions rejected with [`QueueFull`] over the
    /// pool's lifetime.
    pub fn busy_rejections(&self) -> u64 {
        self.inner.busy_rejections.load(Ordering::Relaxed)
    }

    /// Number of runner threads.
    pub fn n_runners(&self) -> usize {
        self.runners.len()
    }
}

impl Drop for JobPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Flip every still-queued job's token so cooperative jobs exit
        // their work quickly; they still run (their handles' latches must
        // open) but observe cancellation at their first safe point.
        for job in self.inner.queue.lock().iter() {
            job.cancel.cancel();
        }
        self.inner.available.notify_all();
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
    }
}

fn runner_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    gauge!("fastbn.parallel.jobs.queue_depth").set(queue.len() as i64);
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inner.available.wait(&mut queue);
            }
        };
        histogram!("fastbn.parallel.jobs.wait_us").observe_duration(job.submitted_at.elapsed());
        inner.running.fetch_add(1, Ordering::Relaxed);
        (job.work)(&job.cancel);
        inner.running.fetch_sub(1, Ordering::Relaxed);
        inner.completed.fetch_add(1, Ordering::Relaxed);
        job.latch.open();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_handles_complete() {
        let pool = JobPool::new(2, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                pool.submit(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap()
            })
            .collect();
        for h in &handles {
            h.wait();
            assert!(h.is_finished());
        }
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(pool.completed(), 8);
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn queue_capacity_rejects_with_queue_full() {
        let pool = JobPool::new(1, 1);
        // Occupy the single runner until released.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let running = pool
            .submit(move |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
            .unwrap();
        started_rx.recv().unwrap();
        // One job fits in the queue; the next is rejected.
        let queued = pool.submit(|_| {}).unwrap();
        assert_eq!(pool.busy_rejections(), 0);
        assert_eq!(pool.submit(|_| {}).err(), Some(QueueFull));
        assert_eq!(pool.queued(), 1);
        assert_eq!(
            pool.busy_rejections(),
            1,
            "rejection is counted on the pool"
        );
        release_tx.send(()).unwrap();
        running.wait();
        queued.wait();
        // Capacity freed: submission succeeds again.
        pool.submit(|_| {}).unwrap().wait();
    }

    #[test]
    fn fifo_order_across_submitters() {
        let pool = JobPool::new(1, 64);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let gate = pool
            .submit(move |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
            .unwrap();
        started_rx.recv().unwrap();
        // With the runner blocked, queue jobs from several "clients".
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let order = Arc::clone(&order);
                pool.submit(move |_| order.lock().push(i)).unwrap()
            })
            .collect();
        // Ids are assigned in admission order.
        for pair in handles.windows(2) {
            assert!(pair[0].id() < pair[1].id());
        }
        release_tx.send(()).unwrap();
        gate.wait();
        for h in &handles {
            h.wait();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn cancellation_is_observable_inside_the_job() {
        let pool = JobPool::new(1, 4);
        let (observed_tx, observed_rx) = mpsc::channel::<bool>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (cancelled_tx, cancelled_rx) = mpsc::channel::<()>();
        let handle = pool
            .submit(move |cancel| {
                started_tx.send(()).unwrap();
                // Wait for the handle side to flip the token.
                cancelled_rx.recv().unwrap();
                observed_tx.send(cancel.is_cancelled()).unwrap();
            })
            .unwrap();
        started_rx.recv().unwrap();
        handle.cancel();
        cancelled_tx.send(()).unwrap();
        assert!(observed_rx.recv().unwrap(), "job saw the cancelled token");
        handle.wait();
    }

    #[test]
    fn drop_cancels_queued_jobs_but_still_runs_them() {
        let pool = JobPool::new(1, 8);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let _gate = pool
            .submit(move |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
            .unwrap();
        started_rx.recv().unwrap();
        let saw_cancel = Arc::new(AtomicBool::new(false));
        let queued = {
            let saw_cancel = Arc::clone(&saw_cancel);
            pool.submit(move |cancel| {
                saw_cancel.store(cancel.is_cancelled(), Ordering::Relaxed);
            })
            .unwrap()
        };
        // Release the gate only after drop() has started: drop first flips
        // the queued job's token (it is still in the queue because the
        // runner is blocked in the gate job), then joins the runners.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            release_tx.send(()).unwrap();
        });
        drop(pool); // shutdown: queued job still runs, token flipped
        releaser.join().unwrap();
        assert!(queued.is_finished());
        assert!(saw_cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn wait_blocks_until_done() {
        let pool = JobPool::new(1, 4);
        let handle = pool
            .submit(|_| std::thread::sleep(Duration::from_millis(20)))
            .unwrap();
        handle.wait();
        assert!(handle.is_finished());
    }

    #[test]
    fn zero_sizes_promote_to_one() {
        let pool = JobPool::new(0, 0);
        assert_eq!(pool.n_runners(), 1);
        pool.submit(|_| {}).unwrap().wait();
    }
}
