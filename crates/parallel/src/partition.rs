//! Task partitioning: balanced contiguous ranges and adjacency sharding.
//!
//! Edge-level parallelism dedicates `|Ed|/t` edges to each thread and
//! sample-level parallelism dedicates `m/t` samples (paper §IV-A); both are
//! static splits of a contiguous index range ([`chunk_ranges`]). The
//! remainder is spread over the first `n mod k` chunks so chunk sizes
//! differ by at most one.
//!
//! The work-stealing scheduler instead seeds per-worker deques with
//! [`shard_by_key`]: tasks are grouped by an *owner key* (for skeleton
//! discovery, an edge endpoint — so all edges incident to a vertex, which
//! share that vertex's data columns, land on one shard and stay cache-warm
//! there) and the key-groups are spread over shards by greedy
//! longest-processing-time placement on an estimated weight. Stealing then
//! only has to correct the residual imbalance the estimate missed.

use std::collections::HashMap;
use std::ops::Range;

/// Split `0..n` into `k` contiguous chunks whose sizes differ by ≤ 1.
/// Chunks may be empty when `n < k`. `k == 0` is promoted to 1.
pub fn chunk_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    let k = k.max(1);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Shard `tasks` into `k` buckets by owner key, balancing estimated weight.
///
/// Tasks with equal `key` always land in the same shard, preserving their
/// relative order (this is what makes the sharding an *adjacency* sharding
/// when the key is an edge endpoint). Key-groups are placed largest-first
/// onto the currently lightest shard (LPT scheduling), with deterministic
/// tie-breaks (equal weights order by key, equal loads pick the lowest
/// shard index), so the same input always yields the same sharding
/// regardless of thread count or timing. `k == 0` is promoted to 1.
pub fn shard_by_key<T>(
    tasks: Vec<T>,
    k: usize,
    key: impl Fn(&T) -> usize,
    weight: impl Fn(&T) -> u64,
) -> Vec<Vec<T>> {
    let k = k.max(1);
    // Group by key, preserving intra-group order. The HashMap only maps
    // key → group index; group order is first-seen, so iteration below is
    // deterministic.
    let mut index: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<(usize, u64, Vec<T>)> = Vec::new();
    for task in tasks {
        let key_of = key(&task);
        let w = weight(&task).max(1); // zero-weight tasks still occupy a slot
        match index.get(&key_of) {
            Some(&g) => {
                groups[g].1 += w;
                groups[g].2.push(task);
            }
            None => {
                index.insert(key_of, groups.len());
                groups.push((key_of, w, vec![task]));
            }
        }
    }
    // Longest-processing-time placement: heaviest group first onto the
    // lightest shard. Sort is stable on (weight desc, key asc) — fully
    // deterministic.
    groups.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut shards: Vec<Vec<T>> = (0..k).map(|_| Vec::new()).collect();
    let mut loads = vec![0u64; k];
    for (_key, w, group) in groups {
        let lightest = (0..k).min_by_key(|&i| (loads[i], i)).unwrap();
        loads[lightest] += w;
        shards[lightest].extend(group);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_range_exactly() {
        for n in [0usize, 1, 7, 64, 1000, 1001] {
            for k in [1usize, 2, 3, 8, 17] {
                let chunks = chunk_ranges(n, k);
                assert_eq!(chunks.len(), k);
                let mut expected = 0;
                for c in &chunks {
                    assert_eq!(c.start, expected, "contiguous");
                    expected = c.end;
                }
                assert_eq!(expected, n, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        for n in [10usize, 99, 1000] {
            for k in [3usize, 7, 16] {
                let sizes: Vec<usize> = chunk_ranges(n, k).iter().map(|c| c.len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} k={k}: {sizes:?}");
            }
        }
    }

    #[test]
    fn more_chunks_than_items_yields_empties() {
        let chunks = chunk_ranges(2, 5);
        let nonempty = chunks.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(nonempty, 2);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 2);
    }

    #[test]
    fn zero_k_promoted() {
        assert_eq!(chunk_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn sharding_preserves_every_task_exactly_once() {
        let tasks: Vec<(usize, u64)> = (0..100).map(|i| (i % 13, 1 + (i as u64 % 5))).collect();
        let shards = shard_by_key(tasks.clone(), 4, |t| t.0, |t| t.1);
        assert_eq!(shards.len(), 4);
        let mut flat: Vec<(usize, u64)> = shards.iter().flatten().copied().collect();
        let mut expected = tasks;
        flat.sort();
        expected.sort();
        assert_eq!(flat, expected);
    }

    #[test]
    fn equal_keys_colocate() {
        let tasks: Vec<(usize, u64)> = (0..60).map(|i| (i % 6, 1)).collect();
        let shards = shard_by_key(tasks, 3, |t| t.0, |t| t.1);
        for key in 0..6 {
            let homes: Vec<usize> = shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.iter().any(|t| t.0 == key))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(homes.len(), 1, "key {key} split across shards {homes:?}");
        }
    }

    #[test]
    fn sharding_is_deterministic() {
        let tasks: Vec<(usize, u64)> = (0..200)
            .map(|i| (i % 31, 1 + (i as u64 * 7) % 11))
            .collect();
        let a = shard_by_key(tasks.clone(), 8, |t| t.0, |t| t.1);
        let b = shard_by_key(tasks, 8, |t| t.0, |t| t.1);
        assert_eq!(a, b);
    }

    #[test]
    fn singleton_groups_balance_within_one_unit() {
        // All keys distinct, all weights equal: LPT degenerates to
        // round-robin and shard sizes differ by ≤ 1.
        let tasks: Vec<(usize, u64)> = (0..103).map(|i| (i, 1)).collect();
        let shards = shard_by_key(tasks, 8, |t| t.0, |t| t.1);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn heavy_group_does_not_attract_more_work() {
        // One group dominates: it must sit alone on its shard while the
        // light groups spread over the remaining shards.
        let mut tasks = vec![(0usize, 1000u64)];
        tasks.extend((1..9).map(|k| (k, 10u64)));
        let shards = shard_by_key(tasks, 4, |t| t.0, |t| t.1);
        let heavy_home = shards
            .iter()
            .position(|s| s.iter().any(|t| t.0 == 0))
            .unwrap();
        assert_eq!(
            shards[heavy_home].len(),
            1,
            "heavy group must not share its shard: {shards:?}"
        );
    }

    #[test]
    fn shard_zero_k_promoted() {
        let shards = shard_by_key(vec![(1usize, 1u64)], 0, |t| t.0, |t| t.1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], vec![(1, 1)]);
    }

    #[test]
    fn empty_task_list_yields_empty_shards() {
        let shards = shard_by_key(Vec::<(usize, u64)>::new(), 3, |t| t.0, |t| t.1);
        assert_eq!(shards.len(), 3);
        assert!(shards.iter().all(|s| s.is_empty()));
    }
}
