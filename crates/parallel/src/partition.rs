//! Balanced contiguous range partitioning.
//!
//! Edge-level parallelism dedicates `|Ed|/t` edges to each thread and
//! sample-level parallelism dedicates `m/t` samples (paper §IV-A); both are
//! static splits of a contiguous index range. The remainder is spread over
//! the first `n mod k` chunks so chunk sizes differ by at most one.

use std::ops::Range;

/// Split `0..n` into `k` contiguous chunks whose sizes differ by ≤ 1.
/// Chunks may be empty when `n < k`. `k == 0` is promoted to 1.
pub fn chunk_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    let k = k.max(1);
    let base = n / k;
    let rem = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_range_exactly() {
        for n in [0usize, 1, 7, 64, 1000, 1001] {
            for k in [1usize, 2, 3, 8, 17] {
                let chunks = chunk_ranges(n, k);
                assert_eq!(chunks.len(), k);
                let mut expected = 0;
                for c in &chunks {
                    assert_eq!(c.start, expected, "contiguous");
                    expected = c.end;
                }
                assert_eq!(expected, n, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        for n in [10usize, 99, 1000] {
            for k in [3usize, 7, 16] {
                let sizes: Vec<usize> = chunk_ranges(n, k).iter().map(|c| c.len()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} k={k}: {sizes:?}");
            }
        }
    }

    #[test]
    fn more_chunks_than_items_yields_empties() {
        let chunks = chunk_ranges(2, 5);
        let nonempty = chunks.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(nonempty, 2);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 2);
    }

    #[test]
    fn zero_k_promoted() {
        assert_eq!(chunk_ranges(5, 0), vec![0..5]);
    }
}
