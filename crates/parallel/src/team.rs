//! A scoped worker team — the OpenMP-parallel-region analogue.
//!
//! [`Team::scoped`] spawns `n` workers inside a [`std::thread::scope`] and
//! hands the caller a handle whose [`Team::broadcast`] runs a job closure on
//! every worker (passing each its thread id) and blocks until all are done.
//! Workers park between jobs, so a broadcast costs one mutex round-trip and
//! two condvar signals instead of `n` thread spawns — the same amortization
//! OpenMP gets by reusing its pool across `#pragma omp parallel` regions.
//!
//! # Safety design
//!
//! A job is passed to workers as a raw `*const dyn Fn(usize)` because the
//! borrow only needs to live for the duration of the broadcast (workers are
//! barriered before `broadcast` returns), which the borrow checker cannot
//! express through a `Mutex`. The invariants making this sound:
//!
//! 1. `broadcast` does not return until `done == n_threads` for the job's
//!    generation, so the pointee strictly outlives every dereference;
//! 2. workers read the pointer only after observing the generation bump
//!    through the mutex (release/acquire via the lock);
//! 3. the scope joins all workers before `scoped` returns, so no worker
//!    outlives the team.

use parking_lot::{Condvar, Mutex};

/// Raw fat pointer to the current job; `usize` generation tags prevent a
/// worker from re-running a stale job.
struct Slot {
    job: Option<JobPtr>,
    generation: u64,
    done: usize,
    shutdown: bool,
}

#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from many threads) and the
// Team protocol guarantees the pointee outlives all dereferences (see module
// docs). The pointer itself is only moved under the mutex.
unsafe impl Send for JobPtr {}

struct Shared {
    slot: Mutex<Slot>,
    work_ready: Condvar,
    work_done: Condvar,
}

/// Handle to a running worker team (see module docs).
pub struct Team<'a> {
    shared: &'a Shared,
    n_threads: usize,
}

impl Team<'_> {
    /// Number of workers (≥ 1).
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Run `job` on every worker (ids `0..n_threads`), blocking until all
    /// finish. Panics in a worker abort the process (standard scoped-thread
    /// behaviour) rather than deadlocking the caller.
    pub fn broadcast(&self, job: &(dyn Fn(usize) + Sync)) {
        let mut slot = self.shared.slot.lock();
        debug_assert!(slot.job.is_none(), "broadcast while a job is running");
        // SAFETY: see module docs — we erase the lifetime but do not return
        // until all workers completed this generation.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                job as *const _,
            )
        });
        slot.job = Some(ptr);
        slot.generation += 1;
        slot.done = 0;
        let gen = slot.generation;
        self.shared.work_ready.notify_all();
        while !(slot.done == self.n_threads && slot.generation == gen) {
            self.shared.work_done.wait(&mut slot);
        }
        slot.job = None;
    }

    /// Create a team of `n_threads` workers, run `f` with its handle, then
    /// shut the workers down. `n_threads == 0` is promoted to 1.
    pub fn scoped<R>(n_threads: usize, f: impl FnOnce(&Team<'_>) -> R) -> R {
        let n_threads = n_threads.max(1);
        let shared = Shared {
            slot: Mutex::new(Slot {
                job: None,
                generation: 0,
                done: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        };
        std::thread::scope(|scope| {
            for tid in 0..n_threads {
                let shared = &shared;
                scope.spawn(move || worker_loop(shared, tid, n_threads));
            }
            let team = Team {
                shared: &shared,
                n_threads,
            };
            let result = f(&team);
            // Shut down.
            {
                let mut slot = shared.slot.lock();
                slot.shutdown = true;
                shared.work_ready.notify_all();
            }
            result
        })
    }
}

fn worker_loop(shared: &Shared, tid: usize, n_threads: usize) {
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != last_gen {
                    if let Some(job) = slot.job {
                        last_gen = slot.generation;
                        break job;
                    }
                }
                shared.work_ready.wait(&mut slot);
            }
        };
        // SAFETY: pointee outlives this call (module docs invariant 1).
        let f = unsafe { &*job.0 };
        f(tid);
        let mut slot = shared.slot.lock();
        slot.done += 1;
        if slot.done == n_threads {
            shared.work_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_worker_once() {
        for n in [1, 2, 4, 7] {
            let hits = AtomicUsize::new(0);
            let id_sum = AtomicUsize::new(0);
            Team::scoped(n, |team| {
                team.broadcast(&|tid| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    id_sum.fetch_add(tid, Ordering::SeqCst);
                });
            });
            assert_eq!(hits.load(Ordering::SeqCst), n);
            assert_eq!(id_sum.load(Ordering::SeqCst), n * (n - 1) / 2);
        }
    }

    #[test]
    fn sequential_broadcasts_reuse_workers() {
        let total = AtomicU64::new(0);
        Team::scoped(3, |team| {
            for round in 0..50u64 {
                team.broadcast(&|_tid| {
                    total.fetch_add(round, Ordering::Relaxed);
                });
            }
        });
        // Each round adds `round` per worker: 3 · Σ rounds.
        assert_eq!(total.load(Ordering::SeqCst), 3 * (0..50).sum::<u64>());
    }

    #[test]
    fn broadcast_sees_borrowed_stack_data() {
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        Team::scoped(4, |team| {
            team.broadcast(&|tid| {
                let chunk = data.len() / 4;
                let lo = tid * chunk;
                let hi = if tid == 3 { data.len() } else { lo + chunk };
                let s: u64 = data[lo..hi].iter().sum();
                sum.fetch_add(s, Ordering::SeqCst);
            });
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..1000).sum::<u64>());
    }

    #[test]
    fn zero_threads_promoted_to_one() {
        let hits = AtomicUsize::new(0);
        Team::scoped(0, |team| {
            assert_eq!(team.n_threads(), 1);
            team.broadcast(&|_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scoped_returns_closure_value() {
        let out = Team::scoped(2, |team| {
            let acc = AtomicUsize::new(10);
            team.broadcast(&|t| {
                acc.fetch_add(t + 1, Ordering::SeqCst);
            });
            acc.load(Ordering::SeqCst)
        });
        assert_eq!(out, 13);
    }

    #[test]
    fn mutation_through_mutex_is_visible_after_broadcast() {
        let shared = parking_lot::Mutex::new(vec![0u32; 8]);
        Team::scoped(8, |team| {
            team.broadcast(&|tid| {
                shared.lock()[tid] += 1;
            });
        });
        assert_eq!(shared.into_inner(), vec![1; 8]);
    }
}
