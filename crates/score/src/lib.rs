//! # fastbn-score — score-based structure search for Fast-BNS
//!
//! The constraint-based learner (`fastbn-core`'s PC-stable / Fast-BNS)
//! prunes edges with CI tests; this crate provides the other pillar of BN
//! structure learning — **search over DAGs guided by a decomposable
//! score** — built on the same substrates: contingency tables filled
//! through [`fastbn_stats::TableArena`]'s tiled dataset sweep, and
//! parallel fan-out over [`fastbn_parallel::StealPool`]'s work-stealing
//! deques.
//!
//! Three layers:
//!
//! * [`score`] — BIC and BDeu **local scores** of a (child, parent-set)
//!   pair, with batched sufficient-statistics fills and a fixed summation
//!   order (bit-reproducible values);
//! * [`cache`] — the **score cache**: local scores memoized under the
//!   canonical sorted parent-set key, shared across search threads,
//!   hit/miss accounted;
//! * [`search`] — the **parallel hill-climbing / tabu searcher**:
//!   add/delete/reverse moves with an incrementally maintained delta
//!   table (only moves touching the changed children are re-scored),
//!   tabu search with aspiration, first-ascent mode, seeded random
//!   restarts, stale deltas fanned out over stealing deques, and a
//!   canonical-move-order tie-break that makes the learned DAG
//!   byte-identical across thread counts and evaluation modes.
//!
//! The hybrid (skeleton-restricted, MMHC-style) learner that combines
//! this searcher with the Fast-BNS skeleton lives in `fastbn-core`
//! (`score_search` module), keeping this crate free of constraint-based
//! code.

pub mod cache;
pub mod score;
pub mod search;

pub use cache::ScoreCache;
pub use score::{LocalScorer, ScoreKind};
pub use search::{
    HillClimb, HillClimbConfig, HillClimbResult, Move, MoveEval, NoSearchObserver, SearchObserver,
    SearchStats,
};
