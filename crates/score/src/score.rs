//! Decomposable scoring functions: BIC, AIC, BDeu and BDs local scores.
//!
//! A decomposable score of a DAG `G` over discrete data factorizes as
//! `score(G) = Σ_v local(v, Pa_G(v))`, so structure search only ever needs
//! the **local score** of one (child, parent-set) pair — a pure function of
//! the child's conditional count table. That table is an ordinary
//! [`ContingencyTable`] with `rx = r_v` child states, `ry = 1` and
//! `nz = q` parent configurations, filled through the same
//! [`TableArena`]/tiled dataset-sweep path the batched CI tests use
//! ([`fastbn_stats::batch`]): one pass over the samples fills every table
//! of a batch, reading the child column once per sample block.
//!
//! All four scores are computed with a **fixed summation order** (parent
//! configurations outer, child states inner, parents encoded most
//! significant first in ascending variable order), so a local score is
//! bit-for-bit reproducible regardless of thread, cache state or batch
//! composition — the foundation of the searcher's cross-thread determinism.

#[cfg(test)]
use fastbn_data::Dataset;
use fastbn_data::{DataStore, Layout};
use fastbn_stats::{
    ln_gamma, mixed_radix_strides, ContingencyTable, CountingBackend, EngineSelect, FillSpec,
    TableArena,
};

/// Which decomposable score the searcher maximizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScoreKind {
    /// Bayesian information criterion: `LL − (ln m / 2)·(r−1)·q` per node.
    Bic,
    /// Akaike information criterion: `LL − (r−1)·q` per node — the same
    /// likelihood with a sample-size-independent penalty, so it keeps more
    /// edges than BIC on large datasets.
    Aic,
    /// Bayesian Dirichlet equivalent uniform with equivalent sample size
    /// `ess` (bnlearn's `bde` with `iss = ess`).
    BDeu {
        /// The equivalent sample size `α > 0` (commonly 1.0).
        ess: f64,
    },
    /// Bayesian Dirichlet sparse (Scutari 2016): BDeu with the prior mass
    /// spread only over the parent configurations **actually observed** in
    /// the data (`α_j = ess / q̃` with `q̃` the observed-configuration
    /// count), which removes BDeu's bias against large parent sets whose
    /// configuration space the data barely covers. Coincides bitwise with
    /// BDeu whenever every configuration is observed.
    BDs {
        /// The equivalent sample size `α > 0` (commonly 1.0).
        ess: f64,
    },
}

impl ScoreKind {
    /// Short name used in bench output and logs.
    pub fn name(self) -> &'static str {
        match self {
            ScoreKind::Bic => "bic",
            ScoreKind::Aic => "aic",
            ScoreKind::BDeu { .. } => "bdeu",
            ScoreKind::BDs { .. } => "bds",
        }
    }
}

/// Computes local scores `local(v, P)` from the dataset.
///
/// Owns a [`TableArena`] so count tables are reshaped in place across
/// calls, and a stride scratch buffer — the per-thread workhorse pattern of
/// [`fastbn-core`'s `CiEngine`](https://docs.rs) applied to score counting.
/// One scorer per search thread; the scorer itself is single-threaded.
pub struct LocalScorer<'d> {
    data: &'d dyn DataStore,
    kind: ScoreKind,
    layout: Layout,
    max_cells: usize,
    count: CountingBackend,
    arena: TableArena,
    /// Mixed-radix strides, flat `|P|`-strided per batch entry.
    strides_flat: Vec<usize>,
    /// Parent ids as `usize`, flat alongside `strides_flat` (the fill
    /// specs borrow conditioning variables in this form).
    parents_flat: Vec<usize>,
    /// Slot map of the current batch (None = oversized, unscorable).
    slots: Vec<Option<usize>>,
    /// Local scores actually computed (diagnostic).
    pub computed: u64,
    /// Parent sets whose count table would exceed `max_cells` (treated as
    /// unscorable; the searcher skips the move).
    pub oversized: u64,
}

impl<'d> LocalScorer<'d> {
    /// A scorer over `data` with the given score and table-size cap.
    pub fn new(data: &'d dyn DataStore, kind: ScoreKind, max_cells: usize) -> Self {
        Self::with_options(
            data,
            kind,
            max_cells,
            Layout::ColumnMajor,
            EngineSelect::Auto,
        )
    }

    /// [`LocalScorer::new`] with an explicit dataset layout for the fill.
    pub fn with_layout(
        data: &'d dyn DataStore,
        kind: ScoreKind,
        max_cells: usize,
        layout: Layout,
    ) -> Self {
        Self::with_options(data, kind, max_cells, layout, EngineSelect::Auto)
    }

    /// Fully explicit constructor: layout and counting backend.
    pub fn with_options(
        data: &'d dyn DataStore,
        kind: ScoreKind,
        max_cells: usize,
        layout: Layout,
        engine: EngineSelect,
    ) -> Self {
        Self {
            data,
            kind,
            layout,
            max_cells,
            count: CountingBackend::new(engine),
            arena: TableArena::new(),
            strides_flat: Vec::new(),
            parents_flat: Vec::new(),
            slots: Vec::new(),
            computed: 0,
            oversized: 0,
        }
    }

    /// The configured score kind.
    pub fn kind(&self) -> ScoreKind {
        self.kind
    }

    /// Local score of child `v` with parent set `parents`.
    ///
    /// `parents` must be sorted ascending (the canonical encoding; the
    /// cache key and the config-index radix order both rely on it) and must
    /// not contain `v`. Returns `None` when the count table would exceed
    /// the cell cap — the searcher treats such a parent set as inadmissible.
    ///
    /// # Panics
    /// Panics (debug) if `parents` is unsorted or contains `v`.
    pub fn local_score(&mut self, v: usize, parents: &[u32]) -> Option<f64> {
        self.score_batch(v, std::slice::from_ref(&parents))
            .next()
            .expect("batch of one yields one score")
    }

    /// Local scores of child `v` for several candidate parent sets, with
    /// **one tiled pass** over the samples filling every count table — the
    /// batched sufficient-statistics path. Each parent set must be sorted
    /// ascending. Yields one `Option<f64>` per set, in order.
    pub fn score_batch<'a, P: AsRef<[u32]>>(
        &'a mut self,
        v: usize,
        parent_sets: &[P],
    ) -> impl Iterator<Item = Option<f64>> + 'a {
        let data = self.data;
        let rv = data.arity(v);
        let m = data.n_samples();

        // Shape pass: one arena slot per admissible parent set; strides are
        // mixed-radix with the *first* (smallest-id) parent most
        // significant, matching the canonical sorted encoding.
        self.arena.begin();
        self.slots.clear();
        self.strides_flat.clear();
        self.parents_flat.clear();
        for pset in parent_sets {
            let parents = pset.as_ref();
            debug_assert!(
                parents.windows(2).all(|w| w[0] < w[1]),
                "parent set must be sorted ascending: {parents:?}"
            );
            debug_assert!(
                !parents.contains(&(v as u32)),
                "child {v} cannot be its own parent"
            );
            match config_strides(data, parents, rv, self.max_cells, &mut self.strides_flat) {
                Some(q) => {
                    self.slots.push(Some(self.arena.add_table(rv, 1, q)));
                    self.parents_flat
                        .extend(parents.iter().map(|&p| p as usize));
                    self.computed += 1;
                }
                None => {
                    // Roll back the strides this set appended.
                    self.strides_flat
                        .truncate(self.strides_flat.len() - parents.len());
                    self.slots.push(None);
                    self.oversized += 1;
                }
            }
        }

        // Shared fill through the counting backend: the tiled engine reads
        // the child column once per sample block and scatters it into
        // every table (cf. `CiEngine::run_batch`); the bitmap engine
        // answers each `r_v × 1 × q` table by AND + popcount against the
        // cached sample-bitmap index. Counts are identical either way.
        if !self.arena.is_empty() {
            let mut specs: Vec<FillSpec<'_>> = Vec::with_capacity(self.arena.len());
            let mut base = 0usize;
            for (slot, pset) in self.slots.iter().zip(parent_sets) {
                if slot.is_none() {
                    continue;
                }
                let np = pset.as_ref().len();
                specs.push(FillSpec {
                    x: v,
                    y: None,
                    cond: &self.parents_flat[base..base + np],
                    zmul: &self.strides_flat[base..base + np],
                });
                base += np;
            }
            self.arena.fill(&mut self.count, data, self.layout, &specs);
        }

        // Evaluation pass, in slot order (fixed summation order per table).
        let kind = self.kind;
        let arena = &self.arena;
        self.slots
            .iter()
            .map(move |slot| slot.map(|i| eval_local(kind, arena.table(i), m)))
    }
}

/// Mixed-radix strides for a sorted parent set, first parent most
/// significant. Appends `parents.len()` strides to `out` and returns the
/// configuration count `q`, or `None` if `q · r_v` would exceed
/// `max_cells`. Thin wrapper over the workspace-wide radix definition
/// ([`fastbn_stats::mixed_radix_strides`]), so parent-configuration
/// indexing and the CI engine's Z indexing can never diverge.
fn config_strides(
    data: &dyn DataStore,
    parents: &[u32],
    rv: usize,
    max_cells: usize,
    out: &mut Vec<usize>,
) -> Option<usize> {
    let base = out.len();
    out.resize(base + parents.len(), 0);
    mixed_radix_strides(
        |i| data.arity(parents[i] as usize),
        &mut out[base..],
        rv,
        max_cells,
    )
}

/// Evaluate the configured score on a filled `r_v × 1 × q` count table.
///
/// Iteration is configuration-outer / state-inner in increasing index —
/// the fixed order that makes local scores bit-reproducible.
fn eval_local(kind: ScoreKind, table: &ContingencyTable, m: usize) -> f64 {
    let r = table.rx();
    let q = table.nz();
    match kind {
        ScoreKind::Bic | ScoreKind::Aic => {
            let mut ll = 0.0f64;
            for c in 0..q {
                let counts = table.z_slice(c);
                let nc: u64 = counts.iter().map(|&x| x as u64).sum();
                if nc == 0 {
                    continue;
                }
                let nc_f = nc as f64;
                for &nck in counts {
                    if nck > 0 {
                        let nck_f = nck as f64;
                        ll += nck_f * (nck_f / nc_f).ln();
                    }
                }
            }
            let params = ((r - 1) * q) as f64;
            match kind {
                ScoreKind::Bic => ll - 0.5 * (m as f64).ln() * params,
                _ => ll - params,
            }
        }
        ScoreKind::BDeu { ess } => {
            assert!(ess > 0.0, "BDeu equivalent sample size must be positive");
            let alpha_q = ess / q as f64;
            let alpha_qr = alpha_q / r as f64;
            let lg_aq = ln_gamma(alpha_q);
            let lg_aqr = ln_gamma(alpha_qr);
            let mut score = 0.0f64;
            for c in 0..q {
                let counts = table.z_slice(c);
                let nc: u64 = counts.iter().map(|&x| x as u64).sum();
                score += lg_aq - ln_gamma(alpha_q + nc as f64);
                for &nck in counts {
                    score += ln_gamma(alpha_qr + nck as f64) - lg_aqr;
                }
            }
            score
        }
        ScoreKind::BDs { ess } => {
            assert!(ess > 0.0, "BDs equivalent sample size must be positive");
            // First pass (fixed order): count the observed configurations
            // q̃; the prior mass is spread over those alone. Unobserved
            // configurations contribute exactly zero (their Gamma terms
            // cancel), so the second pass skips them — which makes BDs
            // coincide bitwise with BDeu whenever q̃ == q.
            let q_obs = (0..q)
                .filter(|&c| table.z_slice(c).iter().any(|&x| x > 0))
                .count();
            if q_obs == 0 {
                return 0.0;
            }
            let alpha_q = ess / q_obs as f64;
            let alpha_qr = alpha_q / r as f64;
            let lg_aq = ln_gamma(alpha_q);
            let lg_aqr = ln_gamma(alpha_qr);
            let mut score = 0.0f64;
            for c in 0..q {
                let counts = table.z_slice(c);
                let nc: u64 = counts.iter().map(|&x| x as u64).sum();
                if nc == 0 {
                    continue;
                }
                score += lg_aq - ln_gamma(alpha_q + nc as f64);
                for &nck in counts {
                    score += ln_gamma(alpha_qr + nck as f64) - lg_aqr;
                }
            }
            score
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_data() -> Dataset {
        // x uniform bit, y = x with 25% flips, z independent ternary.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        let mut state = 0x5EEDu64;
        for _ in 0..800 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 16;
            let a = (r & 1) as u8;
            x.push(a);
            y.push(if r % 100 < 25 { 1 - a } else { a });
            z.push(((r >> 8) % 3) as u8);
        }
        Dataset::from_columns(vec![], vec![2, 2, 3], vec![x, y, z]).unwrap()
    }

    #[test]
    fn bic_matches_hand_computation_for_root_node() {
        // Root node: LL = Σ_k N_k ln(N_k/m); params = r−1.
        let data = small_data();
        let m = data.n_samples() as f64;
        let mut scorer = LocalScorer::new(&data, ScoreKind::Bic, 1 << 20);
        let got = scorer.local_score(0, &[]).unwrap();
        let col = data.column(0);
        let n1 = col.iter().filter(|&&v| v == 1).count() as f64;
        let n0 = m - n1;
        let expect = n0 * (n0 / m).ln() + n1 * (n1 / m).ln() - 0.5 * m.ln();
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn true_parent_beats_empty_and_spurious_parent() {
        // y's true parent is x; BIC(y | x) must beat BIC(y | ∅) and
        // BIC(y | z) (z is independent noise with an extra-parameter cost).
        let data = small_data();
        for kind in [ScoreKind::Bic, ScoreKind::BDeu { ess: 1.0 }] {
            let mut scorer = LocalScorer::new(&data, kind, 1 << 20);
            let with_x = scorer.local_score(1, &[0]).unwrap();
            let empty = scorer.local_score(1, &[]).unwrap();
            let with_z = scorer.local_score(1, &[2]).unwrap();
            assert!(with_x > empty, "{kind:?}: true parent must improve");
            assert!(with_x > with_z, "{kind:?}: true parent beats noise");
            assert!(empty > with_z, "{kind:?}: noise parent costs params");
        }
    }

    #[test]
    fn batch_matches_single_calls() {
        let data = small_data();
        for kind in [ScoreKind::Bic, ScoreKind::BDeu { ess: 2.0 }] {
            let sets: Vec<Vec<u32>> = vec![vec![], vec![0], vec![2], vec![0, 2]];
            let mut batch_scorer = LocalScorer::new(&data, kind, 1 << 20);
            let batched: Vec<Option<f64>> = batch_scorer.score_batch(1, &sets).collect();
            let mut single_scorer = LocalScorer::new(&data, kind, 1 << 20);
            for (set, b) in sets.iter().zip(&batched) {
                let s = single_scorer.local_score(1, set);
                assert_eq!(s.is_some(), b.is_some());
                assert_eq!(s, *b, "{kind:?} parents {set:?} (exact same fill+eval)");
            }
        }
    }

    #[test]
    fn layouts_agree_exactly() {
        let data = small_data();
        let mut col = LocalScorer::new(&data, ScoreKind::Bic, 1 << 20);
        let mut row = LocalScorer::with_layout(&data, ScoreKind::Bic, 1 << 20, Layout::RowMajor);
        for (v, parents) in [
            (0usize, vec![]),
            (1, vec![0]),
            (1, vec![0, 2]),
            (2, vec![0, 1]),
        ] {
            assert_eq!(
                col.local_score(v, &parents),
                row.local_score(v, &parents),
                "v={v} parents={parents:?}"
            );
        }
    }

    #[test]
    fn oversized_parent_set_is_unscorable() {
        let data = small_data();
        // r_v · q = 2 · (2·3) = 12 > 8.
        let mut scorer = LocalScorer::new(&data, ScoreKind::Bic, 8);
        assert_eq!(scorer.local_score(1, &[0, 2]), None);
        assert_eq!(scorer.oversized, 1);
        // A small set still scores, arena slot reuse notwithstanding.
        assert!(scorer.local_score(1, &[0]).is_some());
    }

    #[test]
    fn aic_matches_hand_computation_for_root_node() {
        // Root node: LL = Σ_k N_k ln(N_k/m); AIC penalty = r−1 (no ln m).
        let data = small_data();
        let m = data.n_samples() as f64;
        let mut scorer = LocalScorer::new(&data, ScoreKind::Aic, 1 << 20);
        let got = scorer.local_score(0, &[]).unwrap();
        let col = data.column(0);
        let n1 = col.iter().filter(|&&v| v == 1).count() as f64;
        let n0 = m - n1;
        let expect = n0 * (n0 / m).ln() + n1 * (n1 / m).ln() - 1.0;
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
        // AIC penalizes less than BIC once ln m > 2, so it scores higher.
        let bic = LocalScorer::new(&data, ScoreKind::Bic, 1 << 20)
            .local_score(0, &[])
            .unwrap();
        assert!(got > bic, "AIC {got} must beat BIC {bic} at m=800");
    }

    #[test]
    fn aic_keeps_the_true_parent_ordering() {
        let data = small_data();
        let mut scorer = LocalScorer::new(&data, ScoreKind::Aic, 1 << 20);
        let with_x = scorer.local_score(1, &[0]).unwrap();
        let empty = scorer.local_score(1, &[]).unwrap();
        let with_z = scorer.local_score(1, &[2]).unwrap();
        assert!(with_x > empty, "true parent must improve");
        assert!(with_x > with_z, "true parent beats noise");
    }

    #[test]
    fn bds_equals_bdeu_when_every_configuration_is_observed() {
        // 800 samples over ≤ 6 parent configurations: every configuration
        // occurs, so q̃ == q and BDs must coincide bitwise with BDeu.
        let data = small_data();
        for ess in [0.5, 1.0, 4.0] {
            let mut bds = LocalScorer::new(&data, ScoreKind::BDs { ess }, 1 << 20);
            let mut bdeu = LocalScorer::new(&data, ScoreKind::BDeu { ess }, 1 << 20);
            for (v, parents) in [
                (0usize, vec![]),
                (1, vec![0]),
                (1, vec![0, 2]),
                (2, vec![1]),
            ] {
                assert_eq!(
                    bds.local_score(v, &parents),
                    bdeu.local_score(v, &parents),
                    "ess={ess} v={v} parents={parents:?}"
                );
            }
        }
    }

    #[test]
    fn bds_diverges_from_bdeu_on_unobserved_configurations() {
        // Parent column never takes value 2 (arity 3 declared, only 0/1
        // observed): a third of the configuration space is empty, so BDs
        // spreads its prior over q̃ = 2 < q = 3 and the scores differ.
        let x = vec![0u8, 1, 0, 1, 0, 1, 0, 1];
        let y = vec![0u8, 1, 1, 0, 0, 1, 1, 0];
        let data = Dataset::from_columns(vec![], vec![3, 2], vec![x, y]).unwrap();
        let mut bds = LocalScorer::new(&data, ScoreKind::BDs { ess: 1.0 }, 1 << 20);
        let mut bdeu = LocalScorer::new(&data, ScoreKind::BDeu { ess: 1.0 }, 1 << 20);
        let s_bds = bds.local_score(1, &[0]).unwrap();
        let s_bdeu = bdeu.local_score(1, &[0]).unwrap();
        assert!(
            (s_bds - s_bdeu).abs() > 1e-12,
            "BDs {s_bds} must diverge from BDeu {s_bdeu} with empty configs"
        );
        assert!(s_bds.is_finite() && s_bdeu.is_finite());
    }

    #[test]
    fn score_kind_names_are_stable() {
        assert_eq!(ScoreKind::Bic.name(), "bic");
        assert_eq!(ScoreKind::Aic.name(), "aic");
        assert_eq!(ScoreKind::BDeu { ess: 1.0 }.name(), "bdeu");
        assert_eq!(ScoreKind::BDs { ess: 1.0 }.name(), "bds");
    }

    #[test]
    fn bdeu_prefers_data_supported_structures_over_ess_extremes() {
        // Sanity: BDeu stays finite and ordered for a range of ess values.
        let data = small_data();
        for ess in [0.1, 1.0, 10.0] {
            let mut scorer = LocalScorer::new(&data, ScoreKind::BDeu { ess }, 1 << 20);
            let s = scorer.local_score(1, &[0]).unwrap();
            assert!(s.is_finite(), "ess={ess}");
        }
    }
}
