//! Parallel greedy hill climbing over DAG space.
//!
//! The searcher repeatedly evaluates every admissible **add / delete /
//! reverse** move against the current DAG, applies the best strictly
//! improving one, and stops at a local optimum; seeded random restarts
//! perturb the best DAG found and climb again. Two properties are
//! load-bearing:
//!
//! * **Parallel delta evaluation.** Scoring candidate moves is the
//!   dominant, embarrassingly parallel cost (each delta is one or two
//!   local-score computations — count-table fills over the dataset). The
//!   move list is adjacency-sharded by the move's child onto
//!   [`fastbn_parallel::StealPool`] deques — moves touching the same child
//!   colocate with that child's data columns — and idle threads steal,
//!   exactly the scheduling the skeleton phase uses for CI tests.
//! * **Determinism.** Deltas are pure functions of `(move, DAG, data)`
//!   computed with a fixed summation order, results are gathered by move
//!   index, and the applied move is the *first* maximum in **canonical
//!   move order** (all adds in lexicographic `(u, v)` order, then all
//!   deletes, then all reverses). Thread count, steal interleaving and
//!   cache state are therefore invisible: the learned DAG is byte-identical
//!   at 1, 2, 4 or 8 threads, with the cache on or off — the same
//!   discipline the cross-impl suite enforces on the constraint-based side.
//!
//! A tabu ring forbids the immediate inverse of recently applied moves
//! (cheap insurance against plateau cycling after a perturbation; strict
//! improvement already rules out cycles within one climb).

use crate::cache::ScoreCache;
use crate::score::{LocalScorer, ScoreKind};
use fastbn_data::Dataset;
use fastbn_graph::{Dag, UGraph};
use fastbn_parallel::{run_steal_pool, shard_by_key, StealPool, StepResult, Team};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// One atomic modification of the current DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Move {
    /// Insert the edge `u → v`.
    Add(u32, u32),
    /// Remove the existing edge `u → v`.
    Delete(u32, u32),
    /// Replace the existing edge `u → v` by `v → u`.
    Reverse(u32, u32),
}

impl Move {
    /// The move that undoes this one (what the tabu ring stores).
    pub fn inverse(self) -> Move {
        match self {
            Move::Add(u, v) => Move::Delete(u, v),
            Move::Delete(u, v) => Move::Add(u, v),
            Move::Reverse(u, v) => Move::Reverse(v, u),
        }
    }

    /// The child whose parent set the move alters (for a reverse, the new
    /// child `u`; the sharding key of the delta evaluation).
    pub fn primary_child(self) -> u32 {
        match self {
            Move::Add(_, v) | Move::Delete(_, v) => v,
            Move::Reverse(u, _) => u,
        }
    }
}

/// Configuration of a [`HillClimb`] search.
#[derive(Clone, Debug)]
pub struct HillClimbConfig {
    /// The decomposable score to maximize.
    pub kind: ScoreKind,
    /// Worker threads for delta evaluation (0 is promoted to 1).
    pub threads: usize,
    /// Hard cap on any node's parent count.
    pub max_parents: usize,
    /// How many recently applied moves keep their inverse forbidden.
    pub tabu_len: usize,
    /// Random restarts after the initial climb (0 = plain hill climbing).
    pub restarts: usize,
    /// Random moves applied to the incumbent before each restart climb.
    pub perturb_moves: usize,
    /// Seed for the restart RNG (the shim's deterministic xoshiro256**).
    pub seed: u64,
    /// Memoize local scores in the shared [`ScoreCache`].
    pub use_cache: bool,
    /// Minimum score improvement for a move to be applied.
    pub epsilon: f64,
    /// Count tables larger than this many cells make the parent set
    /// unscorable; such moves are skipped.
    pub max_table_cells: usize,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        Self {
            kind: ScoreKind::Bic,
            threads: 2,
            max_parents: 8,
            tabu_len: 16,
            restarts: 0,
            perturb_moves: 8,
            seed: 0x0FA5_7B45,
            use_cache: true,
            epsilon: 1e-9,
            max_table_cells: 1 << 22,
        }
    }
}

impl HillClimbConfig {
    /// Set the worker-thread count (builder style).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// Set the score kind.
    pub fn with_kind(mut self, kind: ScoreKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set the number of random restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Set the restart RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable the score cache (results must not change).
    pub fn with_cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Set the parent-count cap.
    ///
    /// # Panics
    /// Panics if `max_parents == 0`.
    pub fn with_max_parents(mut self, max_parents: usize) -> Self {
        assert!(max_parents >= 1, "max_parents must be at least 1");
        self.max_parents = max_parents;
        self
    }

    /// Effective thread count (≥ 1).
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }
}

/// Counters and timings of one search run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Moves applied across all climbs.
    pub iterations: u64,
    /// Restarts actually performed.
    pub restarts: u64,
    /// Candidate-move deltas evaluated (cache hits included).
    pub moves_evaluated: u64,
    /// Score-cache hits.
    pub cache_hits: u64,
    /// Score-cache misses (= fresh local-score computations when caching).
    pub cache_misses: u64,
    /// Moves skipped because a count table exceeded the cell cap.
    pub oversized_skipped: u64,
    /// Wall-clock duration of the whole search.
    pub duration: Duration,
}

/// Everything a hill-climbing run produces.
pub struct HillClimbResult {
    /// The best DAG found.
    pub dag: Dag,
    /// Its total score `Σ_v local(v, Pa(v))`.
    pub score: f64,
    /// Search counters.
    pub stats: SearchStats,
}

/// The score-based structure learner: greedy hill climbing with restarts.
///
/// ```
/// use fastbn_score::{HillClimb, HillClimbConfig};
/// use fastbn_data::Dataset;
///
/// let data = Dataset::from_columns(
///     vec![],
///     vec![2, 2],
///     vec![vec![0, 1, 1, 0, 1, 0, 0, 1], vec![0, 1, 1, 0, 1, 0, 1, 0]],
/// ).unwrap();
/// let result = HillClimb::new(HillClimbConfig::default()).learn(&data);
/// assert!(result.score.is_finite());
/// ```
pub struct HillClimb {
    config: HillClimbConfig,
}

impl HillClimb {
    /// A searcher with the given configuration.
    pub fn new(config: HillClimbConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HillClimbConfig {
        &self.config
    }

    /// Search the full DAG space over `data`.
    pub fn learn(&self, data: &Dataset) -> HillClimbResult {
        self.learn_restricted(data, None)
    }

    /// Search with candidate parents restricted to `allowed` adjacencies:
    /// an edge `u → v` may exist only if `allowed` has the undirected edge
    /// `u — v`. This is the hybrid (MMHC-style) second stage, with the
    /// PC-stable skeleton as the restriction graph.
    ///
    /// # Panics
    /// Panics if `allowed` has a different node count than `data`.
    pub fn learn_restricted(&self, data: &Dataset, allowed: Option<&UGraph>) -> HillClimbResult {
        if let Some(g) = allowed {
            assert_eq!(g.n(), data.n_vars(), "restriction graph node count");
        }
        let t0 = Instant::now();
        let cfg = &self.config;
        let t = cfg.effective_threads();
        let searcher = Searcher {
            cfg,
            allowed,
            cache: ScoreCache::new(cfg.use_cache),
            scorers: (0..t)
                .map(|_| Mutex::new(LocalScorer::new(data, cfg.kind, cfg.max_table_cells)))
                .collect(),
            stats: Mutex::new(SearchStats::default()),
        };

        // One worker team lives for the whole search (all climbs and
        // restarts) and is broadcast per delta evaluation — the same
        // amortization the skeleton phase uses; spawning per iteration
        // would put thread start-up on the hot path.
        let run = |team: Option<&Team<'_>>| {
            let n = data.n_vars();
            let mut dag = Dag::empty(n);
            let mut score = searcher.climb(&mut dag, team);
            let mut best = (dag, score);

            let mut rng = StdRng::seed_from_u64(cfg.seed);
            for _ in 0..cfg.restarts {
                let mut cand = best.0.clone();
                searcher.perturb(&mut cand, &mut rng);
                score = searcher.climb(&mut cand, team);
                // Strict improvement keeps the incumbent on ties, so the
                // result does not depend on restart exploration quirks.
                if score > best.1 + cfg.epsilon {
                    best = (cand, score);
                }
                searcher.stats.lock().restarts += 1;
            }
            best
        };
        let best = if t > 1 {
            Team::scoped(t, |team| run(Some(team)))
        } else {
            run(None)
        };

        let mut stats = searcher.stats.into_inner();
        let (hits, misses) = searcher.cache.stats();
        stats.cache_hits = hits;
        stats.cache_misses = misses;
        for scorer in searcher.scorers {
            stats.oversized_skipped += scorer.into_inner().oversized;
        }
        stats.duration = t0.elapsed();
        HillClimbResult {
            dag: best.0,
            score: best.1,
            stats,
        }
    }
}

/// Internal search state shared across climbs of one run.
struct Searcher<'d, 'c> {
    cfg: &'c HillClimbConfig,
    allowed: Option<&'c UGraph>,
    cache: ScoreCache,
    scorers: Vec<Mutex<LocalScorer<'d>>>,
    stats: Mutex<SearchStats>,
}

impl Searcher<'_, '_> {
    /// Greedy-climb `dag` to a local optimum; returns its total score.
    /// `team` is the long-lived worker team for delta fan-out (`None` =
    /// single-threaded).
    fn climb(&self, dag: &mut Dag, team: Option<&Team<'_>>) -> f64 {
        let n = dag.n();
        let mut cur: Vec<f64> = (0..n).map(|v| self.node_score(dag, v)).collect();
        let mut tabu: VecDeque<Move> = VecDeque::new();

        loop {
            let moves = self.enumerate_moves(dag, &tabu);
            if moves.is_empty() {
                break;
            }
            let deltas = self.eval_deltas(dag, &cur, &moves, team);
            self.stats.lock().moves_evaluated += moves.len() as u64;

            // First strict maximum in canonical order wins — the
            // deterministic tie-break.
            let mut best: Option<(usize, f64)> = None;
            for (i, delta) in deltas.iter().enumerate() {
                if let Some(d) = *delta {
                    if d > self.cfg.epsilon && best.is_none_or(|(_, bd)| d > bd) {
                        best = Some((i, d));
                    }
                }
            }
            let Some((idx, _)) = best else { break };
            let mv = moves[idx];
            apply_move(dag, mv);
            match mv {
                Move::Add(_, v) | Move::Delete(_, v) => {
                    cur[v as usize] = self.node_score(dag, v as usize);
                }
                Move::Reverse(u, v) => {
                    cur[u as usize] = self.node_score(dag, u as usize);
                    cur[v as usize] = self.node_score(dag, v as usize);
                }
            }
            if self.cfg.tabu_len > 0 {
                tabu.push_back(mv.inverse());
                while tabu.len() > self.cfg.tabu_len {
                    tabu.pop_front();
                }
            }
            self.stats.lock().iterations += 1;
        }
        cur.iter().sum()
    }

    /// Current local score of `v` under `dag` (−∞ when unscorable, which
    /// only arises transiently after a perturbation; the climb repairs it
    /// because deleting a parent then has +∞ delta).
    fn node_score(&self, dag: &Dag, v: usize) -> f64 {
        let parents: Vec<u32> = dag.parents(v).iter_ones().map(|p| p as u32).collect();
        self.cache
            .get_or_compute(v as u32, &parents, || {
                self.scorers[0].lock().local_score(v, &parents)
            })
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// All structurally admissible moves, in canonical order: adds in
    /// lexicographic `(u, v)`, then deletes, then reverses (each over the
    /// DAG's lexicographic edge list).
    fn enumerate_moves(&self, dag: &Dag, tabu: &VecDeque<Move>) -> Vec<Move> {
        let n = dag.n();
        let max_parents = self.cfg.max_parents;
        let permitted = |u: usize, v: usize| self.allowed.is_none_or(|g| g.has_edge(u, v));
        let mut moves = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u == v || dag.has_edge(u, v) || dag.has_edge(v, u) {
                    continue;
                }
                if !permitted(u, v)
                    || dag.in_degree(v) >= max_parents
                    || dag.reaches(v, u)
                    || tabu.contains(&Move::Add(u as u32, v as u32))
                {
                    continue;
                }
                moves.push(Move::Add(u as u32, v as u32));
            }
        }
        let edges = dag.edges();
        for &(u, v) in &edges {
            if !tabu.contains(&Move::Delete(u as u32, v as u32)) {
                moves.push(Move::Delete(u as u32, v as u32));
            }
        }
        for &(u, v) in &edges {
            if dag.in_degree(u) >= max_parents
                || tabu.contains(&Move::Reverse(u as u32, v as u32))
                || has_path_excluding(dag, u, v)
            {
                continue;
            }
            moves.push(Move::Reverse(u as u32, v as u32));
        }
        moves
    }

    /// Score deltas for every move, fanned out over the stealing deques
    /// on the search's long-lived `team` (sequential when `None`). Results
    /// indexed like `moves`; `None` means the move's new parent set is
    /// unscorable.
    fn eval_deltas(
        &self,
        dag: &Dag,
        cur: &[f64],
        moves: &[Move],
        team: Option<&Team<'_>>,
    ) -> Vec<Option<f64>> {
        let Some(team) = team else {
            let mut scorer = self.scorers[0].lock();
            return moves
                .iter()
                .map(|&mv| self.move_delta(dag, cur, mv, &mut scorer))
                .collect();
        };
        let t = team.n_threads();
        let tasks: Vec<(usize, Move)> = moves.iter().copied().enumerate().collect();
        // Adjacency sharding: moves with the same child (whose columns the
        // count fill streams) colocate; weight by the child's fan-in as a
        // proxy for its table size.
        let shards = shard_by_key(
            tasks,
            t,
            |&(_, mv)| mv.primary_child() as usize,
            |&(_, mv)| 1 + dag.in_degree(mv.primary_child() as usize) as u64,
        );
        let pool = StealPool::from_shards(shards);
        // Per-thread (move index, delta) collection slots; only thread
        // `tid` touches slot `tid`, the mutexes are uncontended.
        type DeltaSlot = Mutex<Vec<(usize, Option<f64>)>>;
        let outs: Vec<DeltaSlot> = (0..t).map(|_| Mutex::new(Vec::new())).collect();
        run_steal_pool(team, &pool, |tid, (idx, mv): (usize, Move)| {
            let mut scorer = self.scorers[tid].lock();
            let delta = self.move_delta(dag, cur, mv, &mut scorer);
            outs[tid].lock().push((idx, delta));
            StepResult::Done
        });
        let mut deltas = vec![None; moves.len()];
        for slot in outs {
            for (idx, delta) in slot.into_inner() {
                deltas[idx] = delta;
            }
        }
        deltas
    }

    /// The score change `score(dag ∘ mv) − score(dag)`, or `None` when a
    /// touched parent set is unscorable.
    fn move_delta(
        &self,
        dag: &Dag,
        cur: &[f64],
        mv: Move,
        scorer: &mut LocalScorer<'_>,
    ) -> Option<f64> {
        match mv {
            Move::Add(u, v) => {
                let new = self.score_edited(dag, v as usize, Some(u), None, scorer)?;
                Some(new - cur[v as usize])
            }
            Move::Delete(u, v) => {
                let new = self.score_edited(dag, v as usize, None, Some(u), scorer)?;
                Some(new - cur[v as usize])
            }
            Move::Reverse(u, v) => {
                let new_u = self.score_edited(dag, u as usize, Some(v), None, scorer)?;
                let new_v = self.score_edited(dag, v as usize, None, Some(u), scorer)?;
                Some((new_u - cur[u as usize]) + (new_v - cur[v as usize]))
            }
        }
    }

    /// Local score of `child` with its parent set edited (one inserted,
    /// one removed), through the cache. The edited set stays sorted, so the
    /// cache key is canonical by construction.
    fn score_edited(
        &self,
        dag: &Dag,
        child: usize,
        insert: Option<u32>,
        remove: Option<u32>,
        scorer: &mut LocalScorer<'_>,
    ) -> Option<f64> {
        let mut parents: Vec<u32> = dag
            .parents(child)
            .iter_ones()
            .map(|p| p as u32)
            .filter(|&p| Some(p) != remove)
            .collect();
        if let Some(p) = insert {
            let pos = parents.partition_point(|&x| x < p);
            parents.insert(pos, p);
        }
        self.cache.get_or_compute(child as u32, &parents, || {
            scorer.local_score(child, &parents)
        })
    }

    /// Apply `perturb_moves` random admissible moves (no tabu) — the
    /// restart kick. Deterministic given the caller's seeded RNG.
    fn perturb(&self, dag: &mut Dag, rng: &mut StdRng) {
        let no_tabu = VecDeque::new();
        for _ in 0..self.cfg.perturb_moves {
            let moves = self.enumerate_moves(dag, &no_tabu);
            if moves.is_empty() {
                break;
            }
            apply_move(dag, moves[rng.gen_range(0..moves.len())]);
        }
    }
}

/// Apply a validated move to the DAG.
///
/// # Panics
/// Panics if the move is structurally invalid for `dag` (the enumerator
/// guarantees it is not).
fn apply_move(dag: &mut Dag, mv: Move) {
    match mv {
        Move::Add(u, v) => {
            assert!(
                dag.try_add_edge(u as usize, v as usize),
                "invalid add {mv:?}"
            );
        }
        Move::Delete(u, v) => {
            assert!(
                dag.remove_edge(u as usize, v as usize),
                "invalid delete {mv:?}"
            );
        }
        Move::Reverse(u, v) => {
            assert!(
                dag.remove_edge(u as usize, v as usize),
                "invalid reverse {mv:?}"
            );
            assert!(
                dag.try_add_edge(v as usize, u as usize),
                "reverse {mv:?} would create a cycle"
            );
        }
    }
}

/// True when a directed path `u ⇝ v` exists that does not use the direct
/// edge `u → v` — exactly the condition under which reversing `u → v`
/// would create a cycle.
fn has_path_excluding(dag: &Dag, u: usize, v: usize) -> bool {
    let mut seen = vec![false; dag.n()];
    let mut stack: Vec<usize> = dag.children(u).iter_ones().filter(|&c| c != v).collect();
    for &c in &stack {
        seen[c] = true;
    }
    while let Some(x) = stack.pop() {
        if x == v {
            return true;
        }
        for c in dag.children(x).iter_ones() {
            if c == v {
                return true;
            }
            if !seen[c] {
                seen[c] = true;
                stack.push(c);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_data() -> Dataset {
        // x → y → z with strong links: hill climbing must recover the
        // chain's adjacencies (direction within the equivalence class may
        // vary).
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        let mut state = 0xC0FFEEu64;
        for _ in 0..1500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 16;
            let a = (r & 1) as u8;
            let b = if r % 100 < 10 { 1 - a } else { a };
            let c = if (r >> 32) % 100 < 10 { 1 - b } else { b };
            x.push(a);
            y.push(b);
            z.push(c);
        }
        Dataset::from_columns(vec![], vec![2, 2, 2], vec![x, y, z]).unwrap()
    }

    #[test]
    fn recovers_chain_adjacencies() {
        let data = chain_data();
        let result = HillClimb::new(HillClimbConfig::default().with_threads(1)).learn(&data);
        let skel = result.dag.skeleton();
        assert!(skel.has_edge(0, 1), "x—y");
        assert!(skel.has_edge(1, 2), "y—z");
        assert!(!skel.has_edge(0, 2), "x⟂z | y: no direct edge");
        assert!(result.score.is_finite());
        assert!(result.stats.iterations >= 2);
    }

    #[test]
    fn thread_counts_learn_identical_dags() {
        let data = chain_data();
        let reference = HillClimb::new(HillClimbConfig::default().with_threads(1)).learn(&data);
        for t in [2usize, 4] {
            let got = HillClimb::new(HillClimbConfig::default().with_threads(t)).learn(&data);
            assert_eq!(got.dag, reference.dag, "t={t}");
            assert_eq!(got.score, reference.score, "t={t} (bitwise)");
        }
    }

    #[test]
    fn cache_disabled_is_identical() {
        let data = chain_data();
        let with = HillClimb::new(HillClimbConfig::default()).learn(&data);
        let without = HillClimb::new(HillClimbConfig::default().with_cache(false)).learn(&data);
        assert_eq!(with.dag, without.dag);
        assert_eq!(with.score, without.score);
        assert_eq!(without.stats.cache_hits, 0);
        assert!(with.stats.cache_hits > 0, "the cache must actually engage");
    }

    #[test]
    fn restriction_graph_is_respected() {
        let data = chain_data();
        // Forbid the (1,2) adjacency: the learned DAG must not contain it
        // in either direction.
        let mut allowed = UGraph::complete(3);
        allowed.remove_edge(1, 2);
        let result =
            HillClimb::new(HillClimbConfig::default()).learn_restricted(&data, Some(&allowed));
        assert!(!result.dag.has_edge(1, 2));
        assert!(!result.dag.has_edge(2, 1));
    }

    #[test]
    fn restarts_are_deterministic_and_never_worse() {
        let data = chain_data();
        let base = HillClimb::new(HillClimbConfig::default()).learn(&data);
        let cfg = HillClimbConfig::default().with_restarts(3).with_seed(7);
        let a = HillClimb::new(cfg.clone()).learn(&data);
        let b = HillClimb::new(cfg).learn(&data);
        assert_eq!(a.dag, b.dag, "same seed, same search");
        assert_eq!(a.score, b.score);
        assert!(a.score >= base.score, "restarts keep the best incumbent");
        assert_eq!(a.stats.restarts, 3);
    }

    #[test]
    fn max_parents_cap_holds() {
        let data = chain_data();
        let result = HillClimb::new(HillClimbConfig::default().with_max_parents(1)).learn(&data);
        for v in 0..3 {
            assert!(result.dag.in_degree(v) <= 1, "node {v} over cap");
        }
    }

    #[test]
    fn move_inverse_roundtrips() {
        for mv in [Move::Add(1, 2), Move::Delete(3, 4), Move::Reverse(5, 6)] {
            assert_eq!(mv.inverse().inverse(), mv);
        }
        assert_eq!(Move::Add(1, 2).primary_child(), 2);
        assert_eq!(Move::Reverse(5, 6).primary_child(), 5);
    }

    #[test]
    fn path_exclusion_detects_alternate_routes() {
        // 0→1→2 plus 0→2: reversing 0→2 must be blocked (alt path 0⇝2).
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(has_path_excluding(&dag, 0, 2));
        assert!(!has_path_excluding(&dag, 1, 2), "only the direct edge");
        // Reversing 1→2 is fine: no other 1⇝2 path.
        let mut d = dag.clone();
        apply_move(&mut d, Move::Reverse(1, 2));
        assert!(d.has_edge(2, 1));
    }
}
