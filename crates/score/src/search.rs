//! Parallel greedy hill climbing and tabu search over DAG space, with
//! incrementally maintained candidate-move deltas.
//!
//! The searcher repeatedly evaluates the admissible **add / delete /
//! reverse** moves against the current DAG, applies one (the best
//! improving move, or — in tabu mode — the best non-improving one when
//! stuck), and stops at a local optimum; seeded random restarts perturb
//! the best DAG found and climb again. Three properties are load-bearing:
//!
//! * **Incremental delta maintenance.** A move's score delta is a pure
//!   function of the parent sets (and current local scores) of the
//!   children it edits — `v` for `Add`/`Delete(u, v)`, both endpoints for
//!   `Reverse`. Applying a move therefore invalidates only the deltas
//!   whose score-children intersect the applied move's touched set; every
//!   other delta carries over bit-for-bit. [`MoveEval::Incremental`] keeps
//!   a table of live deltas across iterations and fans **only the stale
//!   slice** over [`fastbn_parallel::StealPool`]; [`MoveEval::Full`]
//!   re-evaluates everything each iteration and is kept as the test
//!   oracle — the two must produce byte-identical DAGs.
//!   (Structural admissibility — acyclicity, parent caps, the restriction
//!   graph — is recomputed from the DAG every iteration, so only *deltas*
//!   are ever carried, never validity.)
//! * **Parallel delta evaluation.** Scoring candidate moves is the
//!   dominant, embarrassingly parallel cost (each delta is one or two
//!   local-score computations — count-table fills over the dataset). The
//!   stale move list is adjacency-sharded by the move's child onto the
//!   stealing deques — moves touching the same child colocate with that
//!   child's data columns — and idle threads steal, exactly the
//!   scheduling the skeleton phase uses for CI tests.
//! * **Determinism.** Deltas are pure functions of `(move, DAG, data)`
//!   computed with a fixed summation order, results are gathered by move
//!   index, and the applied move is the *first* maximum in **canonical
//!   move order** (all adds in lexicographic `(u, v)` order, then all
//!   deletes, then all reverses). Thread count, steal interleaving, cache
//!   state and evaluation mode are therefore invisible: the learned DAG
//!   is byte-identical at 1, 2, 4 or 8 threads, with the cache on or off,
//!   incremental or full — the same discipline the cross-impl suite
//!   enforces on the constraint-based side.
//!
//! **Tabu semantics.** The tabu ring remembers the last `tabu_len`
//! *applied* moves and blocks every move that would undo one of their
//! edge-state changes ([`Move::undoers`]): re-adding a deleted edge,
//! re-deleting an added one, and — for a reversal `u→v ⇒ v→u` — both
//! re-reversing *and* deleting the new `v→u` edge (blocking only the
//! re-reverse would let a delete undo the reversal one iteration later, a
//! real plateau cycle once non-improving moves are accepted). A tabu move
//! is still admissible under the **aspiration criterion**: it may be
//! applied if it would beat the best total score seen this climb. With
//! `tabu_search` enabled the searcher accepts the best admissible
//! non-improving move when no improving one exists, bounded by `tabu_len`
//! consecutive moves without a new incumbent; the result is always the
//! best DAG seen, not the last one visited.

use crate::cache::ScoreCache;
use crate::score::{LocalScorer, ScoreKind};
#[cfg(test)]
use fastbn_data::Dataset;
use fastbn_data::{DataStore, Layout};
use fastbn_graph::{Dag, UGraph};
use fastbn_parallel::{run_steal_pool, shard_by_key, StealPool, StepResult, Team};
use fastbn_stats::EngineSelect;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Observer of a running search — the progress/cancellation seam a serving
/// process hooks the climber through.
///
/// Called from the coordinating thread at iteration granularity (after
/// every applied move), *outside* the parallel delta fan-out, so an
/// observer that always returns `true` cannot perturb the search: the
/// learned DAG stays byte-identical to an unobserved run. Returning
/// `false` requests a cooperative early stop — the search winds down
/// immediately and returns the **best DAG seen so far** (remaining
/// restarts are skipped too).
pub trait SearchObserver: Sync {
    /// One move was applied. `iteration` is the cumulative applied-move
    /// count across all climbs and restarts of this run; `score` is the
    /// current DAG's total score (which tabu exploration may hold below
    /// the incumbent). Return `false` to stop the search early.
    fn on_iteration(&self, iteration: u64, score: f64) -> bool {
        let _ = (iteration, score);
        true
    }
}

/// The do-nothing observer behind [`HillClimb::learn`] /
/// [`HillClimb::learn_restricted`].
pub struct NoSearchObserver;

impl SearchObserver for NoSearchObserver {}

/// One atomic modification of the current DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Move {
    /// Insert the edge `u → v`.
    Add(u32, u32),
    /// Remove the existing edge `u → v`.
    Delete(u32, u32),
    /// Replace the existing edge `u → v` by `v → u`.
    Reverse(u32, u32),
}

impl Move {
    /// The single move that exactly restores the pre-move DAG.
    pub fn inverse(self) -> Move {
        match self {
            Move::Add(u, v) => Move::Delete(u, v),
            Move::Delete(u, v) => Move::Add(u, v),
            Move::Reverse(u, v) => Move::Reverse(v, u),
        }
    }

    /// The moves the tabu ring blocks after this move is applied: every
    /// move that would undo its edge-state change. For `Add`/`Delete`
    /// that is the plain [`Move::inverse`]; for `Reverse(u, v)` both
    /// `Reverse(v, u)` *and* `Delete(v, u)` revert the reversed edge
    /// state, so both are blocked — keying on the inverse alone lets a
    /// delete dismantle the reversal on the next iteration.
    pub fn undoers(self) -> (Move, Option<Move>) {
        match self {
            Move::Add(u, v) => (Move::Delete(u, v), None),
            Move::Delete(u, v) => (Move::Add(u, v), None),
            Move::Reverse(u, v) => (Move::Reverse(v, u), Some(Move::Delete(v, u))),
        }
    }

    /// The children whose parent sets (and hence local scores) this move
    /// edits: `v` for add/delete, both endpoints for a reverse. This is
    /// the invalidation key of the maintained delta table.
    pub fn touched(self) -> (u32, Option<u32>) {
        match self {
            Move::Add(_, v) | Move::Delete(_, v) => (v, None),
            Move::Reverse(u, v) => (u, Some(v)),
        }
    }

    /// The child whose parent set the move alters (for a reverse, the new
    /// child `u`; the sharding key of the delta evaluation).
    pub fn primary_child(self) -> u32 {
        match self {
            Move::Add(_, v) | Move::Delete(_, v) => v,
            Move::Reverse(u, _) => u,
        }
    }
}

/// How candidate-move deltas are obtained each iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MoveEval {
    /// Maintain the delta table across iterations: after applying a move,
    /// only deltas whose score-children were touched are recomputed (and
    /// fanned over the stealing deques); all others carry over bitwise.
    #[default]
    Incremental,
    /// Re-enumerate and re-score every candidate move every iteration —
    /// the pre-maintenance behavior, kept as the incremental path's test
    /// oracle (results must be byte-identical).
    Full,
}

/// Configuration of a [`HillClimb`] search.
#[derive(Clone, Debug)]
pub struct HillClimbConfig {
    /// The decomposable score to maximize.
    pub kind: ScoreKind,
    /// Worker threads for delta evaluation (0 is promoted to 1).
    pub threads: usize,
    /// Hard cap on any node's parent count.
    pub max_parents: usize,
    /// How many recently applied moves keep their undoing moves forbidden
    /// (see [`Move::undoers`]); also bounds tabu exploration.
    pub tabu_len: usize,
    /// Accept the best admissible **non-improving** move when no improving
    /// one exists (tabu search proper). Exploration is bounded: after
    /// `tabu_len` consecutive applied moves without a new incumbent the
    /// climb stops. The result is always the best DAG seen. Has no effect
    /// when `tabu_len == 0`.
    pub tabu_search: bool,
    /// Apply the **first** improving move in canonical order instead of
    /// the best one — fewer, cheaper iterations on very wide networks at
    /// the cost of a greedier trajectory. Still deterministic.
    pub first_ascent: bool,
    /// Delta evaluation mode (incremental table vs full re-enumeration).
    pub evaluation: MoveEval,
    /// Random restarts after the initial climb (0 = plain hill climbing).
    pub restarts: usize,
    /// Random moves applied to the incumbent before each restart climb.
    pub perturb_moves: usize,
    /// Seed for the restart RNG (the shim's deterministic xoshiro256**).
    pub seed: u64,
    /// Memoize local scores in the shared [`ScoreCache`].
    pub use_cache: bool,
    /// Minimum score improvement for a move to count as improving.
    pub epsilon: f64,
    /// Count tables larger than this many cells make the parent set
    /// unscorable; such moves are skipped.
    pub max_table_cells: usize,
    /// Which counting backend fills the count tables (tiled column scan,
    /// bitmap/popcount, or per-query auto-selection). Any choice produces
    /// byte-identical counts — and therefore bitwise-identical scores.
    pub count_engine: EngineSelect,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        Self {
            kind: ScoreKind::Bic,
            threads: 2,
            max_parents: 8,
            tabu_len: 16,
            tabu_search: false,
            first_ascent: false,
            evaluation: MoveEval::Incremental,
            restarts: 0,
            perturb_moves: 8,
            seed: 0x0FA5_7B45,
            use_cache: true,
            epsilon: 1e-9,
            max_table_cells: 1 << 22,
            count_engine: EngineSelect::Auto,
        }
    }
}

impl HillClimbConfig {
    /// Set the worker-thread count (builder style).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// Set the score kind.
    pub fn with_kind(mut self, kind: ScoreKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set the number of random restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Set the restart RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable the score cache (results must not change).
    pub fn with_cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Choose the delta-evaluation mode (results must not change).
    pub fn with_evaluation(mut self, evaluation: MoveEval) -> Self {
        self.evaluation = evaluation;
        self
    }

    /// Enable tabu search (accept bounded non-improving moves when stuck).
    pub fn with_tabu_search(mut self, on: bool) -> Self {
        self.tabu_search = on;
        self
    }

    /// Set the tabu-ring length (also the tabu exploration bound).
    pub fn with_tabu_len(mut self, tabu_len: usize) -> Self {
        self.tabu_len = tabu_len;
        self
    }

    /// Enable first-ascent move selection.
    pub fn with_first_ascent(mut self, on: bool) -> Self {
        self.first_ascent = on;
        self
    }

    /// Set the counting backend (results must not change, only speed).
    pub fn with_count_engine(mut self, engine: EngineSelect) -> Self {
        self.count_engine = engine;
        self
    }

    /// Set the parent-count cap.
    ///
    /// # Panics
    /// Panics if `max_parents == 0`.
    pub fn with_max_parents(mut self, max_parents: usize) -> Self {
        assert!(max_parents >= 1, "max_parents must be at least 1");
        self.max_parents = max_parents;
        self
    }

    /// Effective thread count (≥ 1).
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }
}

/// Counters and timings of one search run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Moves applied across all climbs.
    pub iterations: u64,
    /// Restarts actually performed.
    pub restarts: u64,
    /// Candidate-move deltas actually **computed** (score-cache hits
    /// included; carried-over and unscorable moves are not).
    pub moves_evaluated: u64,
    /// Candidate moves whose delta computation came back unscorable (a
    /// touched parent set's count table exceeded the cell cap). Note the
    /// counters are work meters, not comparable across evaluation modes:
    /// [`MoveEval::Full`] re-counts a persistently unscorable move every
    /// iteration, while [`MoveEval::Incremental`] counts it once and then
    /// reports its cached `None` under `moves_carried`.
    pub moves_pruned: u64,
    /// Candidate-move deltas served from the maintained table without any
    /// recomputation (incremental mode only; includes carried unscorable
    /// entries — see `moves_pruned`).
    pub moves_carried: u64,
    /// Score-cache hits.
    pub cache_hits: u64,
    /// Score-cache misses (= fresh local-score computations when caching).
    pub cache_misses: u64,
    /// Parent sets skipped because their count table exceeded the cell cap.
    pub oversized_skipped: u64,
    /// Wall-clock duration of the whole search.
    pub duration: Duration,
}

/// Everything a hill-climbing run produces.
pub struct HillClimbResult {
    /// The best DAG found.
    pub dag: Dag,
    /// Its total score `Σ_v local(v, Pa(v))`.
    pub score: f64,
    /// Search counters.
    pub stats: SearchStats,
}

/// The score-based structure learner: greedy hill climbing (optionally
/// tabu search) with restarts.
///
/// ```
/// use fastbn_score::{HillClimb, HillClimbConfig};
/// use fastbn_data::Dataset;
///
/// let data = Dataset::from_columns(
///     vec![],
///     vec![2, 2],
///     vec![vec![0, 1, 1, 0, 1, 0, 0, 1], vec![0, 1, 1, 0, 1, 0, 1, 0]],
/// ).unwrap();
/// let result = HillClimb::new(HillClimbConfig::default()).learn(&data);
/// assert!(result.score.is_finite());
/// ```
pub struct HillClimb {
    config: HillClimbConfig,
}

impl HillClimb {
    /// A searcher with the given configuration.
    pub fn new(config: HillClimbConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &HillClimbConfig {
        &self.config
    }

    /// Search the full DAG space over `data`.
    pub fn learn(&self, data: &dyn DataStore) -> HillClimbResult {
        self.learn_restricted(data, None)
    }

    /// Search with candidate parents restricted to `allowed` adjacencies:
    /// an edge `u → v` may exist only if `allowed` has the undirected edge
    /// `u — v`. This is the hybrid (MMHC-style) second stage, with the
    /// PC-stable skeleton as the restriction graph.
    ///
    /// # Panics
    /// Panics if `allowed` has a different node count than `data`.
    pub fn learn_restricted(
        &self,
        data: &dyn DataStore,
        allowed: Option<&UGraph>,
    ) -> HillClimbResult {
        self.learn_observed(data, allowed, &NoSearchObserver)
    }

    /// [`HillClimb::learn_restricted`] with a [`SearchObserver`] watching
    /// (and optionally stopping) the search. An observer that always
    /// returns `true` leaves the result byte-identical to the unobserved
    /// run; one that returns `false` stops the search early with the best
    /// DAG seen so far.
    ///
    /// # Panics
    /// Panics if `allowed` has a different node count than `data`.
    pub fn learn_observed(
        &self,
        data: &dyn DataStore,
        allowed: Option<&UGraph>,
        observer: &dyn SearchObserver,
    ) -> HillClimbResult {
        if let Some(g) = allowed {
            assert_eq!(g.n(), data.n_vars(), "restriction graph node count");
        }
        let _span = fastbn_obs::span!("score.search");
        let t0 = Instant::now();
        let cfg = &self.config;
        let t = cfg.effective_threads();
        let searcher = Searcher {
            cfg,
            allowed,
            cache: ScoreCache::new(cfg.use_cache),
            scorers: (0..t)
                .map(|_| {
                    Mutex::new(LocalScorer::with_options(
                        data,
                        cfg.kind,
                        cfg.max_table_cells,
                        Layout::ColumnMajor,
                        cfg.count_engine,
                    ))
                })
                .collect(),
            stats: Mutex::new(SearchStats::default()),
            observer,
            stopped: AtomicBool::new(false),
        };

        // One worker team lives for the whole search (all climbs and
        // restarts) and is broadcast per delta evaluation — the same
        // amortization the skeleton phase uses; spawning per iteration
        // would put thread start-up on the hot path.
        let run = |team: Option<&Team<'_>>| {
            let n = data.n_vars();
            let mut dag = Dag::empty(n);
            let mut score = searcher.climb(&mut dag, team);
            let mut best = (dag, score);

            let mut rng = StdRng::seed_from_u64(cfg.seed);
            for _ in 0..cfg.restarts {
                // The observer asked for a stop: skip remaining restarts.
                if searcher.stopped.load(Ordering::Relaxed) {
                    break;
                }
                let mut cand = best.0.clone();
                searcher.perturb(&mut cand, &mut rng);
                score = searcher.climb(&mut cand, team);
                // Strict improvement keeps the incumbent on ties, so the
                // result does not depend on restart exploration quirks.
                if score > best.1 + cfg.epsilon {
                    best = (cand, score);
                }
                searcher.stats.lock().restarts += 1;
            }
            best
        };
        let best = if t > 1 {
            Team::scoped(t, |team| run(Some(team)))
        } else {
            run(None)
        };

        let mut stats = searcher.stats.into_inner();
        let (hits, misses) = searcher.cache.stats();
        stats.cache_hits = hits;
        stats.cache_misses = misses;
        let cache_entries = searcher.cache.len();
        for scorer in searcher.scorers {
            stats.oversized_skipped += scorer.into_inner().oversized;
        }
        stats.duration = t0.elapsed();
        // One registry flush per run keeps the per-move hot path free of
        // shared-line traffic while still surfacing every counter live.
        fastbn_obs::counter!("fastbn.score.search.iterations").add(stats.iterations);
        fastbn_obs::counter!("fastbn.score.search.moves_evaluated").add(stats.moves_evaluated);
        fastbn_obs::counter!("fastbn.score.search.moves_pruned").add(stats.moves_pruned);
        fastbn_obs::counter!("fastbn.score.search.moves_carried").add(stats.moves_carried);
        fastbn_obs::counter!("fastbn.score.cache.hits").add(stats.cache_hits);
        fastbn_obs::counter!("fastbn.score.cache.misses").add(stats.cache_misses);
        fastbn_obs::gauge!("fastbn.score.cache.entries").set(cache_entries as i64);
        fastbn_obs::histogram!("fastbn.score.search.run_us").observe_duration(stats.duration);
        HillClimbResult {
            dag: best.0,
            score: best.1,
            stats,
        }
    }
}

/// Internal search state shared across climbs of one run.
struct Searcher<'d, 'c> {
    cfg: &'c HillClimbConfig,
    allowed: Option<&'c UGraph>,
    cache: ScoreCache,
    scorers: Vec<Mutex<LocalScorer<'d>>>,
    stats: Mutex<SearchStats>,
    observer: &'c dyn SearchObserver,
    /// Latched when `observer` returns `false`: stops the current climb
    /// and skips remaining restarts.
    stopped: AtomicBool,
}

impl Searcher<'_, '_> {
    /// Climb `dag` to a local optimum (greedy) or explore past it (tabu
    /// search); leaves the **best DAG seen** in `dag` and returns its
    /// total score. `team` is the long-lived worker team for delta
    /// fan-out (`None` = single-threaded).
    fn climb(&self, dag: &mut Dag, team: Option<&Team<'_>>) -> f64 {
        let n = dag.n();
        let mut cur: Vec<f64> = (0..n).map(|v| self.node_score(dag, v)).collect();
        // Totals are always re-summed in index order so the aspiration
        // comparison is bitwise identical in every mode and thread count.
        let mut cur_total: f64 = cur.iter().sum();
        let mut best_total = cur_total;
        // Only tabu exploration can leave `dag` below the incumbent, so
        // only it pays for best-DAG snapshots; plain greedy never applies
        // a non-improving move, so its final DAG is the best seen.
        let mut best_dag: Option<Dag> = self.cfg.tabu_search.then(|| dag.clone());
        // The tabu ring holds *applied* moves; `is_tabu` blocks their
        // undoing moves (both of them, for reversals).
        let mut tabu: VecDeque<Move> = VecDeque::new();
        // The maintained delta table (incremental mode). An entry stays
        // valid until a move touches its score-children; entries for
        // currently inadmissible moves are simply not read — validity is
        // re-derived from the DAG each iteration, only deltas carry over.
        let mut table: HashMap<Move, Option<f64>> = HashMap::new();
        // Applied moves since `best` last improved (tabu exploration bound).
        let mut stall = 0usize;

        loop {
            let moves = self.enumerate_moves(dag);
            if moves.is_empty() {
                break;
            }
            let deltas = match self.cfg.evaluation {
                MoveEval::Full => {
                    let deltas = self.eval_deltas(dag, &cur, &moves, team);
                    self.record_eval(&deltas);
                    deltas
                }
                MoveEval::Incremental => self.eval_incremental(dag, &cur, &moves, &mut table, team),
            };

            // Selection. Admissible = scorable and (not tabu, or tabu but
            // aspirating — the move would beat the best score seen).
            // `best_any` is the first maximum in canonical order over the
            // admissible moves; `first_imp` the first improving one.
            let mut best_any: Option<(usize, f64)> = None;
            let mut first_imp: Option<(usize, f64)> = None;
            for (i, delta) in deltas.iter().enumerate() {
                let Some(d) = *delta else { continue };
                let aspirates = cur_total + d > best_total + self.cfg.epsilon;
                if !aspirates && self.is_tabu(moves[i], &tabu) {
                    continue;
                }
                if first_imp.is_none() && d > self.cfg.epsilon {
                    first_imp = Some((i, d));
                    if self.cfg.first_ascent {
                        break;
                    }
                }
                if best_any.is_none_or(|(_, bd)| d > bd) {
                    best_any = Some((i, d));
                }
            }
            let improving = if self.cfg.first_ascent {
                first_imp
            } else {
                best_any.filter(|&(_, d)| d > self.cfg.epsilon)
            };
            let pick = match improving {
                Some(p) => Some(p),
                // Stuck: tabu search takes the best admissible
                // non-improving move, bounded by `tabu_len` applied moves
                // without a new incumbent.
                None if self.cfg.tabu_search && stall < self.cfg.tabu_len => best_any,
                None => None,
            };
            let Some((idx, _)) = pick else { break };

            let mv = moves[idx];
            apply_move(dag, mv);
            let (a, b) = mv.touched();
            cur[a as usize] = self.node_score(dag, a as usize);
            if let Some(b) = b {
                cur[b as usize] = self.node_score(dag, b as usize);
            }
            cur_total = cur.iter().sum();
            // Invalidate exactly the deltas whose score-children were
            // touched; everything else carries over bitwise.
            let touched = |c: u32| c == a || Some(c) == b;
            table.retain(|m, _| {
                let (x, y) = m.touched();
                !touched(x) && !y.is_some_and(touched)
            });
            if self.cfg.tabu_len > 0 {
                tabu.push_back(mv);
                while tabu.len() > self.cfg.tabu_len {
                    tabu.pop_front();
                }
            }
            let iteration = {
                let mut stats = self.stats.lock();
                stats.iterations += 1;
                stats.iterations
            };
            if cur_total > best_total + self.cfg.epsilon {
                best_total = cur_total;
                if let Some(b) = best_dag.as_mut() {
                    b.clone_from(dag);
                }
                stall = 0;
            } else {
                stall += 1;
            }
            // Progress/cancellation seam: the observer runs after the move
            // is fully applied, outside the parallel fan-out, so a `true`
            // return cannot perturb the search.
            if !self.observer.on_iteration(iteration, cur_total) {
                self.stopped.store(true, Ordering::Relaxed);
                break;
            }
        }
        match best_dag {
            // Tabu mode: the climb may end below the incumbent — return
            // the best DAG seen and its score.
            Some(b) => {
                *dag = b;
                best_total
            }
            // Greedy mode: every applied move improved, the final DAG is
            // the best seen (and its freshly summed total is the score).
            None => cur_total,
        }
    }

    /// True when `mv` would undo the edge-state change of a move still in
    /// the tabu ring.
    fn is_tabu(&self, mv: Move, tabu: &VecDeque<Move>) -> bool {
        tabu.iter().any(|&applied| {
            let (a, b) = applied.undoers();
            mv == a || Some(mv) == b
        })
    }

    /// Account one evaluation round: deltas actually computed vs pruned
    /// (unscorable) — carried-over moves never reach this.
    fn record_eval(&self, computed: &[Option<f64>]) {
        let scored = computed.iter().filter(|d| d.is_some()).count() as u64;
        let mut stats = self.stats.lock();
        stats.moves_evaluated += scored;
        stats.moves_pruned += computed.len() as u64 - scored;
    }

    /// Incremental evaluation: serve every move with a live table entry
    /// from the table, compute only the stale slice (fanned over the
    /// stealing deques) and fold the fresh deltas back in.
    fn eval_incremental(
        &self,
        dag: &Dag,
        cur: &[f64],
        moves: &[Move],
        table: &mut HashMap<Move, Option<f64>>,
        team: Option<&Team<'_>>,
    ) -> Vec<Option<f64>> {
        let mut deltas = vec![None; moves.len()];
        let mut stale_idx: Vec<usize> = Vec::new();
        let mut stale: Vec<Move> = Vec::new();
        let mut carried = 0u64;
        for (i, &mv) in moves.iter().enumerate() {
            if let Some(&d) = table.get(&mv) {
                deltas[i] = d;
                carried += 1;
            } else {
                stale_idx.push(i);
                stale.push(mv);
            }
        }
        let fresh = self.eval_deltas(dag, cur, &stale, team);
        self.record_eval(&fresh);
        self.stats.lock().moves_carried += carried;
        for ((i, mv), d) in stale_idx.into_iter().zip(stale).zip(fresh) {
            deltas[i] = d;
            table.insert(mv, d);
        }
        deltas
    }

    /// Current local score of `v` under `dag` (−∞ when unscorable, which
    /// only arises transiently after a perturbation; the climb repairs it
    /// because deleting a parent then has +∞ delta).
    fn node_score(&self, dag: &Dag, v: usize) -> f64 {
        let parents: Vec<u32> = dag.parents(v).iter_ones().map(|p| p as u32).collect();
        self.cache
            .get_or_compute(v as u32, &parents, || {
                self.scorers[0].lock().local_score(v, &parents)
            })
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// All structurally admissible moves, in canonical order: adds in
    /// lexicographic `(u, v)`, then deletes, then reverses (each over the
    /// DAG's lexicographic edge list). Tabu status is *not* filtered here —
    /// selection handles it, because a tabu move may still be applied
    /// under the aspiration criterion.
    fn enumerate_moves(&self, dag: &Dag) -> Vec<Move> {
        let n = dag.n();
        let max_parents = self.cfg.max_parents;
        let permitted = |u: usize, v: usize| self.allowed.is_none_or(|g| g.has_edge(u, v));
        // Strict-descendant bitsets, one reverse-topological sweep: the
        // cycle check of every candidate add (`v ⇝ u?`) and reverse
        // becomes a bit test instead of a DFS — with deltas maintained
        // incrementally, `n²` DFS walks would dominate the iteration.
        let desc = dag.descendants();
        let mut moves = Vec::new();
        for u in 0..n {
            for (v, desc_v) in desc.iter().enumerate() {
                if u == v || dag.has_edge(u, v) || dag.has_edge(v, u) {
                    continue;
                }
                if !permitted(u, v) || dag.in_degree(v) >= max_parents || desc_v.contains(u) {
                    continue;
                }
                moves.push(Move::Add(u as u32, v as u32));
            }
        }
        let edges = dag.edges();
        for &(u, v) in &edges {
            moves.push(Move::Delete(u as u32, v as u32));
        }
        for &(u, v) in &edges {
            // Reversing u→v cycles iff some u ⇝ v path avoids the direct
            // edge: a child c ≠ v of u from which v is still reachable.
            let alt_path = dag
                .children(u)
                .iter_ones()
                .any(|c| c != v && desc[c].contains(v));
            debug_assert_eq!(alt_path, has_path_excluding(dag, u, v), "{u}→{v}");
            if dag.in_degree(u) >= max_parents || alt_path {
                continue;
            }
            moves.push(Move::Reverse(u as u32, v as u32));
        }
        moves
    }

    /// Score deltas for every move, fanned out over the stealing deques
    /// on the search's long-lived `team` (sequential when `None`). Results
    /// indexed like `moves`; `None` means the move's new parent set is
    /// unscorable.
    fn eval_deltas(
        &self,
        dag: &Dag,
        cur: &[f64],
        moves: &[Move],
        team: Option<&Team<'_>>,
    ) -> Vec<Option<f64>> {
        // Tiny batches (the steady state of incremental maintenance) are
        // cheaper inline than broadcast: deltas are pure functions, so the
        // cutover is invisible in the results.
        const FAN_OUT_MIN: usize = 32;
        let Some(team) = team.filter(|_| moves.len() >= FAN_OUT_MIN) else {
            let mut scorer = self.scorers[0].lock();
            return moves
                .iter()
                .map(|&mv| self.move_delta(dag, cur, mv, &mut scorer))
                .collect();
        };
        let t = team.n_threads();
        let tasks: Vec<(usize, Move)> = moves.iter().copied().enumerate().collect();
        // Adjacency sharding: moves with the same child (whose columns the
        // count fill streams) colocate; weight by the child's fan-in as a
        // proxy for its table size.
        let shards = shard_by_key(
            tasks,
            t,
            |&(_, mv)| mv.primary_child() as usize,
            |&(_, mv)| 1 + dag.in_degree(mv.primary_child() as usize) as u64,
        );
        let pool = StealPool::from_shards(shards);
        // Per-thread (move index, delta) collection slots; only thread
        // `tid` touches slot `tid`, the mutexes are uncontended.
        type DeltaSlot = Mutex<Vec<(usize, Option<f64>)>>;
        let outs: Vec<DeltaSlot> = (0..t).map(|_| Mutex::new(Vec::new())).collect();
        run_steal_pool(team, &pool, |tid, (idx, mv): (usize, Move)| {
            let mut scorer = self.scorers[tid].lock();
            let delta = self.move_delta(dag, cur, mv, &mut scorer);
            outs[tid].lock().push((idx, delta));
            StepResult::Done
        });
        let mut deltas = vec![None; moves.len()];
        for slot in outs {
            for (idx, delta) in slot.into_inner() {
                deltas[idx] = delta;
            }
        }
        deltas
    }

    /// The score change `score(dag ∘ mv) − score(dag)`, or `None` when a
    /// touched parent set is unscorable.
    fn move_delta(
        &self,
        dag: &Dag,
        cur: &[f64],
        mv: Move,
        scorer: &mut LocalScorer<'_>,
    ) -> Option<f64> {
        match mv {
            Move::Add(u, v) => {
                let new = self.score_edited(dag, v as usize, Some(u), None, scorer)?;
                Some(new - cur[v as usize])
            }
            Move::Delete(u, v) => {
                let new = self.score_edited(dag, v as usize, None, Some(u), scorer)?;
                Some(new - cur[v as usize])
            }
            Move::Reverse(u, v) => {
                let new_u = self.score_edited(dag, u as usize, Some(v), None, scorer)?;
                let new_v = self.score_edited(dag, v as usize, None, Some(u), scorer)?;
                Some((new_u - cur[u as usize]) + (new_v - cur[v as usize]))
            }
        }
    }

    /// Local score of `child` with its parent set edited (one inserted,
    /// one removed), through the cache. The edited set stays sorted, so the
    /// cache key is canonical by construction.
    fn score_edited(
        &self,
        dag: &Dag,
        child: usize,
        insert: Option<u32>,
        remove: Option<u32>,
        scorer: &mut LocalScorer<'_>,
    ) -> Option<f64> {
        let mut parents: Vec<u32> = dag
            .parents(child)
            .iter_ones()
            .map(|p| p as u32)
            .filter(|&p| Some(p) != remove)
            .collect();
        if let Some(p) = insert {
            let pos = parents.partition_point(|&x| x < p);
            parents.insert(pos, p);
        }
        self.cache.get_or_compute(child as u32, &parents, || {
            scorer.local_score(child, &parents)
        })
    }

    /// Apply `perturb_moves` random admissible moves (no tabu) — the
    /// restart kick. Deterministic given the caller's seeded RNG.
    fn perturb(&self, dag: &mut Dag, rng: &mut StdRng) {
        for _ in 0..self.cfg.perturb_moves {
            let moves = self.enumerate_moves(dag);
            if moves.is_empty() {
                break;
            }
            apply_move(dag, moves[rng.gen_range(0..moves.len())]);
        }
    }
}

/// Apply a validated move to the DAG.
///
/// # Panics
/// Panics if the move is structurally invalid for `dag` (the enumerator
/// guarantees it is not).
fn apply_move(dag: &mut Dag, mv: Move) {
    match mv {
        Move::Add(u, v) => {
            assert!(
                dag.try_add_edge(u as usize, v as usize),
                "invalid add {mv:?}"
            );
        }
        Move::Delete(u, v) => {
            assert!(
                dag.remove_edge(u as usize, v as usize),
                "invalid delete {mv:?}"
            );
        }
        Move::Reverse(u, v) => {
            assert!(
                dag.remove_edge(u as usize, v as usize),
                "invalid reverse {mv:?}"
            );
            assert!(
                dag.try_add_edge(v as usize, u as usize),
                "reverse {mv:?} would create a cycle"
            );
        }
    }
}

/// True when a directed path `u ⇝ v` exists that does not use the direct
/// edge `u → v` — exactly the condition under which reversing `u → v`
/// would create a cycle. Kept as the (debug-asserted) oracle for the
/// bitset-based check in `enumerate_moves`.
fn has_path_excluding(dag: &Dag, u: usize, v: usize) -> bool {
    let mut seen = vec![false; dag.n()];
    let mut stack: Vec<usize> = dag.children(u).iter_ones().filter(|&c| c != v).collect();
    for &c in &stack {
        seen[c] = true;
    }
    while let Some(x) = stack.pop() {
        if x == v {
            return true;
        }
        for c in dag.children(x).iter_ones() {
            if c == v {
                return true;
            }
            if !seen[c] {
                seen[c] = true;
                stack.push(c);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_data() -> Dataset {
        // x → y → z with strong links: hill climbing must recover the
        // chain's adjacencies (direction within the equivalence class may
        // vary).
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        let mut state = 0xC0FFEEu64;
        for _ in 0..1500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 16;
            let a = (r & 1) as u8;
            let b = if r % 100 < 10 { 1 - a } else { a };
            let c = if (r >> 32) % 100 < 10 { 1 - b } else { b };
            x.push(a);
            y.push(b);
            z.push(c);
        }
        Dataset::from_columns(vec![], vec![2, 2, 2], vec![x, y, z]).unwrap()
    }

    /// Two exactly independent, exactly balanced binary columns: every
    /// joint cell holds the same count, so no move ever improves (every
    /// edge costs parameters and buys zero likelihood) and the reverse
    /// delta is an exact tie — the canonical plateau workload.
    fn flat_two_var_data() -> Dataset {
        let x: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let y: Vec<u8> = (0..64).map(|i| ((i / 2) % 2) as u8).collect();
        Dataset::from_columns(vec![], vec![2, 2], vec![x, y]).unwrap()
    }

    #[test]
    fn recovers_chain_adjacencies() {
        let data = chain_data();
        let result = HillClimb::new(HillClimbConfig::default().with_threads(1)).learn(&data);
        let skel = result.dag.skeleton();
        assert!(skel.has_edge(0, 1), "x—y");
        assert!(skel.has_edge(1, 2), "y—z");
        assert!(!skel.has_edge(0, 2), "x⟂z | y: no direct edge");
        assert!(result.score.is_finite());
        assert!(result.stats.iterations >= 2);
    }

    #[test]
    fn thread_counts_learn_identical_dags() {
        let data = chain_data();
        let reference = HillClimb::new(HillClimbConfig::default().with_threads(1)).learn(&data);
        for t in [2usize, 4] {
            let got = HillClimb::new(HillClimbConfig::default().with_threads(t)).learn(&data);
            assert_eq!(got.dag, reference.dag, "t={t}");
            assert_eq!(got.score, reference.score, "t={t} (bitwise)");
        }
    }

    #[test]
    fn cache_disabled_is_identical() {
        let data = chain_data();
        let with = HillClimb::new(HillClimbConfig::default()).learn(&data);
        let without = HillClimb::new(HillClimbConfig::default().with_cache(false)).learn(&data);
        assert_eq!(with.dag, without.dag);
        assert_eq!(with.score, without.score);
        assert_eq!(without.stats.cache_hits, 0);
        assert!(with.stats.cache_hits > 0, "the cache must actually engage");
    }

    #[test]
    fn incremental_matches_full_oracle() {
        let data = chain_data();
        for t in [1usize, 2] {
            let full = HillClimb::new(
                HillClimbConfig::default()
                    .with_threads(t)
                    .with_evaluation(MoveEval::Full),
            )
            .learn(&data);
            let incr = HillClimb::new(
                HillClimbConfig::default()
                    .with_threads(t)
                    .with_evaluation(MoveEval::Incremental),
            )
            .learn(&data);
            assert_eq!(incr.dag, full.dag, "t={t}");
            assert_eq!(incr.score, full.score, "t={t} (bitwise)");
            assert!(
                incr.stats.moves_evaluated < full.stats.moves_evaluated,
                "t={t}: incremental must compute fewer deltas ({} vs {})",
                incr.stats.moves_evaluated,
                full.stats.moves_evaluated
            );
            assert!(incr.stats.moves_carried > 0, "t={t}: table must carry");
            assert_eq!(full.stats.moves_carried, 0, "full mode never carries");
        }
    }

    #[test]
    fn first_ascent_is_deterministic_and_terminates() {
        let data = chain_data();
        let cfg = |t: usize, eval: MoveEval| {
            HillClimbConfig::default()
                .with_threads(t)
                .with_first_ascent(true)
                .with_evaluation(eval)
        };
        let reference = HillClimb::new(cfg(1, MoveEval::Incremental)).learn(&data);
        assert!(reference.score.is_finite());
        for t in [2usize, 4] {
            let got = HillClimb::new(cfg(t, MoveEval::Incremental)).learn(&data);
            assert_eq!(got.dag, reference.dag, "t={t}");
            assert_eq!(got.score, reference.score, "t={t}");
        }
        let full = HillClimb::new(cfg(2, MoveEval::Full)).learn(&data);
        assert_eq!(full.dag, reference.dag, "full oracle");
        assert_eq!(full.score, reference.score, "full oracle score");
    }

    #[test]
    fn tabu_search_terminates_on_flat_two_var_data() {
        // Regression for the under-blocking tabu ring: once non-improving
        // moves are accepted, `Reverse(u,v)` followed by `Delete(v,u)`
        // could cycle a plateau forever if only `Reverse(v,u)` were tabu.
        let data = flat_two_var_data();
        for eval in [MoveEval::Incremental, MoveEval::Full] {
            let result = HillClimb::new(
                HillClimbConfig::default()
                    .with_threads(1)
                    .with_tabu_search(true)
                    .with_tabu_len(4)
                    .with_evaluation(eval),
            )
            .learn(&data);
            // Nothing improves on flat data: the best DAG seen is the
            // empty start, whatever the tabu exploration visited.
            assert_eq!(result.dag, Dag::empty(2), "{eval:?}");
            assert!(
                result.stats.iterations <= 8,
                "{eval:?}: plateau exploration must stay bounded, took {}",
                result.stats.iterations
            );
        }
    }

    #[test]
    fn tabu_blocks_both_undoers_of_a_reversal() {
        let (a, b) = Move::Reverse(3, 5).undoers();
        assert_eq!(a, Move::Reverse(5, 3));
        assert_eq!(b, Some(Move::Delete(5, 3)));
        let (a, b) = Move::Add(1, 2).undoers();
        assert_eq!((a, b), (Move::Delete(1, 2), None));
        let (a, b) = Move::Delete(1, 2).undoers();
        assert_eq!((a, b), (Move::Add(1, 2), None));
    }

    #[test]
    fn tabu_search_never_returns_worse_than_greedy() {
        let data = chain_data();
        let greedy = HillClimb::new(HillClimbConfig::default().with_threads(1)).learn(&data);
        let tabu = HillClimb::new(
            HillClimbConfig::default()
                .with_threads(1)
                .with_tabu_search(true),
        )
        .learn(&data);
        assert!(
            tabu.score >= greedy.score,
            "tabu returns the best DAG seen: {} vs {}",
            tabu.score,
            greedy.score
        );
    }

    #[test]
    fn evaluated_pruned_and_carried_counters_split_correctly() {
        // max_table_cells = 8 makes any two-parent set for a binary child
        // over binary+ternary parents unscorable (2·2·3 = 12 > 8), so the
        // search must prune some moves while evaluating others.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut z = Vec::new();
        let mut state = 0xBEEFu64;
        for _ in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 16;
            let a = (r & 1) as u8;
            x.push(a);
            y.push(if r % 100 < 20 { 1 - a } else { a });
            z.push(((r >> 8) % 3) as u8);
        }
        let data = Dataset::from_columns(vec![], vec![2, 2, 3], vec![x, y, z]).unwrap();
        let mut cfg = HillClimbConfig::default().with_threads(1);
        cfg.max_table_cells = 8;
        let full = HillClimb::new(cfg.clone().with_evaluation(MoveEval::Full)).learn(&data);
        assert!(full.stats.moves_evaluated > 0);
        assert!(
            full.stats.moves_pruned > 0,
            "oversized moves must be counted as pruned, not evaluated"
        );
        assert_eq!(full.stats.moves_carried, 0);

        let incr = HillClimb::new(cfg.with_evaluation(MoveEval::Incremental)).learn(&data);
        assert_eq!(incr.dag, full.dag, "pruning must not break the oracle");
        assert!(incr.stats.moves_evaluated <= full.stats.moves_evaluated);
        assert!(incr.stats.moves_carried > 0);
    }

    #[test]
    fn restriction_graph_is_respected() {
        let data = chain_data();
        // Forbid the (1,2) adjacency: the learned DAG must not contain it
        // in either direction.
        let mut allowed = UGraph::complete(3);
        allowed.remove_edge(1, 2);
        let result =
            HillClimb::new(HillClimbConfig::default()).learn_restricted(&data, Some(&allowed));
        assert!(!result.dag.has_edge(1, 2));
        assert!(!result.dag.has_edge(2, 1));
    }

    #[test]
    fn restarts_are_deterministic_and_never_worse() {
        let data = chain_data();
        let base = HillClimb::new(HillClimbConfig::default()).learn(&data);
        let cfg = HillClimbConfig::default().with_restarts(3).with_seed(7);
        let a = HillClimb::new(cfg.clone()).learn(&data);
        let b = HillClimb::new(cfg).learn(&data);
        assert_eq!(a.dag, b.dag, "same seed, same search");
        assert_eq!(a.score, b.score);
        assert!(a.score >= base.score, "restarts keep the best incumbent");
        assert_eq!(a.stats.restarts, 3);
    }

    #[test]
    fn max_parents_cap_holds() {
        let data = chain_data();
        let result = HillClimb::new(HillClimbConfig::default().with_max_parents(1)).learn(&data);
        for v in 0..3 {
            assert!(result.dag.in_degree(v) <= 1, "node {v} over cap");
        }
    }

    #[test]
    fn move_inverse_roundtrips() {
        for mv in [Move::Add(1, 2), Move::Delete(3, 4), Move::Reverse(5, 6)] {
            assert_eq!(mv.inverse().inverse(), mv);
        }
        assert_eq!(Move::Add(1, 2).primary_child(), 2);
        assert_eq!(Move::Reverse(5, 6).primary_child(), 5);
        assert_eq!(Move::Add(1, 2).touched(), (2, None));
        assert_eq!(Move::Delete(1, 2).touched(), (2, None));
        assert_eq!(Move::Reverse(5, 6).touched(), (5, Some(6)));
    }

    #[test]
    fn path_exclusion_detects_alternate_routes() {
        // 0→1→2 plus 0→2: reversing 0→2 must be blocked (alt path 0⇝2).
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(has_path_excluding(&dag, 0, 2));
        assert!(!has_path_excluding(&dag, 1, 2), "only the direct edge");
        // Reversing 1→2 is fine: no other 1⇝2 path.
        let mut d = dag.clone();
        apply_move(&mut d, Move::Reverse(1, 2));
        assert!(d.has_edge(2, 1));
    }

    /// Records every observer call; optionally stops after a cutoff.
    struct RecordingObserver {
        seen: Mutex<Vec<(u64, f64)>>,
        stop_after: Option<u64>,
    }

    impl SearchObserver for RecordingObserver {
        fn on_iteration(&self, iteration: u64, score: f64) -> bool {
            self.seen.lock().push((iteration, score));
            self.stop_after.is_none_or(|cut| iteration < cut)
        }
    }

    #[test]
    fn passive_observer_leaves_result_byte_identical() {
        let data = chain_data();
        let plain = HillClimb::new(HillClimbConfig::default().with_threads(2)).learn(&data);
        let obs = RecordingObserver {
            seen: Mutex::new(Vec::new()),
            stop_after: None,
        };
        let observed = HillClimb::new(HillClimbConfig::default().with_threads(2))
            .learn_observed(&data, None, &obs);
        assert_eq!(observed.dag, plain.dag);
        assert_eq!(observed.score.to_bits(), plain.score.to_bits());
        let seen = obs.seen.into_inner();
        assert_eq!(seen.len() as u64, plain.stats.iterations);
        // Iteration counts are cumulative and the last score is the final
        // greedy score (greedy mode: every applied move improved).
        assert_eq!(seen.last().unwrap().0, plain.stats.iterations);
        assert_eq!(seen.last().unwrap().1.to_bits(), plain.score.to_bits());
    }

    #[test]
    fn observer_stop_ends_search_early_with_valid_result() {
        let data = chain_data();
        let obs = RecordingObserver {
            seen: Mutex::new(Vec::new()),
            stop_after: Some(1),
        };
        let result = HillClimb::new(HillClimbConfig::default().with_threads(1).with_restarts(3))
            .learn_observed(&data, None, &obs);
        // Stopped after the first applied move: no further iterations and
        // no restarts ran.
        assert_eq!(result.stats.iterations, 1);
        assert_eq!(result.stats.restarts, 0);
        assert!(result.score.is_finite());
        assert_eq!(obs.seen.into_inner().len(), 1);
    }
}
