//! The score cache: memoized local scores keyed on the canonical
//! (child, parent-set) encoding.
//!
//! Hill climbing re-examines the same `local(v, P)` values thousands of
//! times — every iteration rescans all candidate moves, but only the two
//! children touched by the previously applied move have changed parent
//! sets. The cache turns every other delta evaluation into two hash-map
//! lookups.
//!
//! **Canonical keying.** A parent set is encoded as its sorted-ascending
//! variable-id list; the key is `(child, sorted parents)`. Sorting makes
//! the encoding canonical — `{2,7}` and `{7,2}` are the same set, and
//! [`crate::score::LocalScorer`] fixes the count-table radix order to the
//! same sorted order, so a cached value is bit-identical to a fresh
//! computation no matter which move first requested it. Unscorable entries
//! (`None`: table over the cell cap) are cached too, so an oversized
//! parent set is rejected once, not once per iteration.
//!
//! **Sharing.** One cache is shared by all search threads behind a mutex.
//! The lock is held only for lookup/insert — the score computation itself
//! runs outside it — so contention stays low, and because a local score is
//! a pure function of `(child, parents, data)`, a racing double-compute
//! inserts the same value twice and cannot affect results (which is why
//! the searcher is byte-identical with the cache on, off, or shared by any
//! number of threads).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Canonical cache key: child plus its sorted parent-set encoding.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct ScoreKey {
    child: u32,
    parents: Box<[u32]>,
}

/// A shared memo of local scores with hit/miss accounting.
pub struct ScoreCache {
    /// `None` disables memoization (every request is a miss) while keeping
    /// the counters — the ablation knob the property tests exercise.
    map: Option<Mutex<HashMap<ScoreKey, Option<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScoreCache {
    /// A cache; `enabled = false` makes every lookup a miss (scores are
    /// recomputed each time — results must not change, only speed).
    pub fn new(enabled: bool) -> Self {
        Self {
            map: enabled.then(|| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// True when memoization is active.
    pub fn is_enabled(&self) -> bool {
        self.map.is_some()
    }

    /// Number of distinct (child, parent-set) entries currently stored.
    pub fn len(&self) -> usize {
        self.map.as_ref().map_or(0, |m| m.lock().len())
    }

    /// True when no entry is stored (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Look up `local(child, parents)`, computing and inserting it on a
    /// miss. `parents` must already be in canonical (sorted ascending)
    /// order. `compute` runs outside the lock.
    pub fn get_or_compute(
        &self,
        child: u32,
        parents: &[u32],
        compute: impl FnOnce() -> Option<f64>,
    ) -> Option<f64> {
        debug_assert!(
            parents.windows(2).all(|w| w[0] < w[1]),
            "cache key must use the canonical sorted encoding: {parents:?}"
        );
        let Some(map) = &self.map else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return compute();
        };
        let key = ScoreKey {
            child,
            parents: parents.into(),
        };
        if let Some(&cached) = map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        map.lock().insert(key, value);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let cache = ScoreCache::new(true);
        let mut calls = 0u32;
        for _ in 0..3 {
            let v = cache.get_or_compute(1, &[0, 4], || {
                calls += 1;
                Some(-12.5)
            });
            assert_eq!(v, Some(-12.5));
        }
        assert_eq!(calls, 1, "computed once, served twice");
        assert_eq!(cache.stats(), (2, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let cache = ScoreCache::new(false);
        let mut calls = 0u32;
        for _ in 0..3 {
            cache.get_or_compute(1, &[2], || {
                calls += 1;
                Some(0.0)
            });
        }
        assert_eq!(calls, 3);
        assert_eq!(cache.stats(), (0, 3));
        assert!(cache.is_empty());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn none_results_are_cached_too() {
        let cache = ScoreCache::new(true);
        let mut calls = 0u32;
        for _ in 0..2 {
            let v = cache.get_or_compute(0, &[1, 2, 3], || {
                calls += 1;
                None
            });
            assert_eq!(v, None);
        }
        assert_eq!(calls, 1, "unscorable entries memoized");
    }

    #[test]
    fn distinct_children_and_sets_do_not_collide() {
        let cache = ScoreCache::new(true);
        cache.get_or_compute(0, &[1], || Some(1.0));
        cache.get_or_compute(1, &[0], || Some(2.0));
        cache.get_or_compute(0, &[], || Some(3.0));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get_or_compute(0, &[1], || unreachable!()), Some(1.0));
        assert_eq!(cache.get_or_compute(1, &[0], || unreachable!()), Some(2.0));
        assert_eq!(cache.get_or_compute(0, &[], || unreachable!()), Some(3.0));
    }
}
