//! Property tests for the score subsystem: cache transparency, scorer
//! determinism, and search invariance to threads/cache — the score-side
//! analogue of the constraint learner's cross-impl discipline.

use fastbn_data::Dataset;
use fastbn_graph::Dag;
use fastbn_score::{HillClimb, HillClimbConfig, LocalScorer, MoveEval, ScoreCache, ScoreKind};
use proptest::prelude::*;

/// Strategy: a random complete discrete dataset (3–5 variables of arity
/// 2–3, 120–320 samples).
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (3usize..6, 120usize..320).prop_flat_map(|(n_vars, m)| {
        (
            proptest::collection::vec(2u8..4, n_vars..=n_vars),
            proptest::collection::vec(proptest::collection::vec(0u8..2, m..=m), n_vars..=n_vars),
            Just(n_vars),
        )
            .prop_map(|(arities, raw_cols, _)| {
                // Clamp values into each variable's arity.
                let cols: Vec<Vec<u8>> = raw_cols
                    .into_iter()
                    .zip(&arities)
                    .map(|(col, &a)| col.into_iter().map(|v| v % a).collect())
                    .collect();
                Dataset::from_columns(vec![], arities, cols).unwrap()
            })
    })
}

/// All sorted parent subsets of size ≤ 2 for a child (enough shapes to
/// exercise the radix/stride paths without combinatorial blow-up).
fn parent_subsets(n: usize, child: usize) -> Vec<Vec<u32>> {
    let others: Vec<u32> = (0..n as u32).filter(|&v| v as usize != child).collect();
    let mut sets = vec![vec![]];
    for (i, &a) in others.iter().enumerate() {
        sets.push(vec![a]);
        for &b in &others[i + 1..] {
            sets.push(vec![a, b]);
        }
    }
    sets
}

proptest! {
    /// The cache is transparent: a value served from the cache equals a
    /// freshly computed one to 1e-9 (bitwise, in fact) for BIC and BDeu,
    /// every child and every parent set.
    #[test]
    fn cached_and_fresh_scores_agree(data in dataset_strategy()) {
        for kind in [ScoreKind::Bic, ScoreKind::BDeu { ess: 1.0 }] {
            let cache = ScoreCache::new(true);
            let mut warm = LocalScorer::new(&data, kind, 1 << 20);
            let mut fresh = LocalScorer::new(&data, kind, 1 << 20);
            for child in 0..data.n_vars() {
                for parents in parent_subsets(data.n_vars(), child) {
                    // First call computes and fills the cache...
                    let first = cache.get_or_compute(child as u32, &parents, || {
                        warm.local_score(child, &parents)
                    });
                    // ...second call must be served from it.
                    let cached = cache.get_or_compute(child as u32, &parents, || {
                        panic!("cache must hit on the second request")
                    });
                    let recomputed = fresh.local_score(child, &parents);
                    prop_assert_eq!(first.is_some(), recomputed.is_some());
                    if let (Some(c), Some(r)) = (cached, recomputed) {
                        prop_assert!((c - r).abs() < 1e-9,
                            "{:?} child {} parents {:?}: cached {} vs fresh {}",
                            kind, child, parents, c, r);
                    }
                }
            }
            let (hits, _misses) = cache.stats();
            prop_assert!(hits > 0);
        }
    }

    /// A local score is a pure function: two scorers over the same data
    /// produce bit-identical values regardless of call history.
    #[test]
    fn scorer_is_deterministic(data in dataset_strategy()) {
        let mut a = LocalScorer::new(&data, ScoreKind::Bic, 1 << 20);
        let mut b = LocalScorer::new(&data, ScoreKind::Bic, 1 << 20);
        // Different call orders (forward vs reverse) must not matter.
        let n = data.n_vars();
        let mut pairs: Vec<(usize, Vec<u32>)> = (0..n)
            .flat_map(|c| parent_subsets(n, c).into_iter().map(move |p| (c, p)))
            .collect();
        let forward: Vec<Option<f64>> =
            pairs.iter().map(|(c, p)| a.local_score(*c, p)).collect();
        pairs.reverse();
        let mut backward: Vec<Option<f64>> =
            pairs.iter().map(|(c, p)| b.local_score(*c, p)).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    /// Hill climbing learns the identical DAG (and bitwise-identical
    /// score) at every thread count, with the cache on or off.
    #[test]
    fn hill_climb_invariant_to_threads_and_cache(data in dataset_strategy()) {
        let reference = HillClimb::new(
            HillClimbConfig::default().with_threads(1),
        ).learn(&data);
        prop_assert!(dag_is_valid(&reference.dag));
        for threads in [2usize, 4] {
            let got = HillClimb::new(
                HillClimbConfig::default().with_threads(threads),
            ).learn(&data);
            prop_assert_eq!(&got.dag, &reference.dag, "t={}", threads);
            prop_assert_eq!(got.score, reference.score, "t={} score", threads);
        }
        let uncached = HillClimb::new(
            HillClimbConfig::default().with_threads(2).with_cache(false),
        ).learn(&data);
        prop_assert_eq!(&uncached.dag, &reference.dag, "cache off");
        prop_assert_eq!(uncached.score, reference.score, "cache off score");
    }

    /// BDeu searches are thread-invariant too (different numerics than
    /// BIC: log-gamma sums instead of log-likelihood terms).
    #[test]
    fn bdeu_search_is_thread_invariant(data in dataset_strategy()) {
        let cfg = |t: usize| HillClimbConfig::default()
            .with_kind(ScoreKind::BDeu { ess: 1.0 })
            .with_threads(t);
        let reference = HillClimb::new(cfg(1)).learn(&data);
        let parallel = HillClimb::new(cfg(4)).learn(&data);
        prop_assert_eq!(&parallel.dag, &reference.dag);
        prop_assert_eq!(parallel.score, reference.score);
    }

    /// The maintained delta table is a pure optimization: incremental and
    /// full re-enumeration learn the identical DAG and bitwise-identical
    /// score at every thread count, with the cache on or off, with tabu
    /// exploration on or off, and in first-ascent mode.
    #[test]
    fn incremental_evaluation_matches_full_oracle(data in dataset_strategy()) {
        for (tabu, first) in [(false, false), (true, false), (false, true)] {
            let cfg = |eval: MoveEval, t: usize, cache: bool| {
                HillClimbConfig::default()
                    .with_threads(t)
                    .with_cache(cache)
                    .with_evaluation(eval)
                    .with_tabu_search(tabu)
                    .with_first_ascent(first)
            };
            let oracle = HillClimb::new(cfg(MoveEval::Full, 1, true)).learn(&data);
            prop_assert!(dag_is_valid(&oracle.dag));
            for t in [1usize, 4] {
                for cache in [true, false] {
                    let got = HillClimb::new(
                        cfg(MoveEval::Incremental, t, cache),
                    ).learn(&data);
                    prop_assert_eq!(&got.dag, &oracle.dag,
                        "tabu={} first={} t={} cache={}", tabu, first, t, cache);
                    prop_assert_eq!(got.score, oracle.score,
                        "tabu={} first={} t={} cache={} score", tabu, first, t, cache);
                }
            }
        }
    }

    /// Degenerate data — all-constant columns plus exactly duplicated
    /// columns (exact score ties everywhere) — must terminate and produce
    /// byte-identical DAGs across thread counts, evaluation modes, and
    /// tabu exploration on/off (nothing improves on such data, so every
    /// variant returns the same best-seen DAG).
    #[test]
    fn ties_and_constant_columns_terminate_identically(
        n_vars in 3usize..6,
        m in 40usize..120,
        seed in 0u64..1000,
    ) {
        // Column 0: constant. Column 1: pseudo-random. Columns 2..: exact
        // duplicates of column 1 (maximal tie pressure: every pair of
        // duplicate variables has identical local scores).
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let base: Vec<u8> = (0..m)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) & 1) as u8
            })
            .collect();
        let mut cols = vec![vec![0u8; m], base.clone()];
        for _ in 2..n_vars {
            cols.push(base.clone());
        }
        let data = Dataset::from_columns(vec![], vec![2; n_vars], cols).unwrap();

        let cfg = |eval: MoveEval, t: usize, tabu: bool| {
            HillClimbConfig::default()
                .with_threads(t)
                .with_evaluation(eval)
                .with_tabu_search(tabu)
        };
        let reference = HillClimb::new(cfg(MoveEval::Full, 1, false)).learn(&data);
        prop_assert!(dag_is_valid(&reference.dag));
        for tabu in [false, true] {
            for eval in [MoveEval::Incremental, MoveEval::Full] {
                for t in [1usize, 2, 4] {
                    let got = HillClimb::new(cfg(eval, t, tabu)).learn(&data);
                    prop_assert_eq!(&got.dag, &reference.dag,
                        "tabu={} eval={:?} t={}", tabu, eval, t);
                    prop_assert_eq!(got.score, reference.score,
                        "tabu={} eval={:?} t={} score", tabu, eval, t);
                }
            }
        }
    }

    /// AIC and BDs searches obey the thread/cache/evaluation invariance
    /// discipline like BIC and BDeu.
    #[test]
    fn aic_and_bds_searches_are_invariant(data in dataset_strategy()) {
        for kind in [ScoreKind::Aic, ScoreKind::BDs { ess: 1.0 }] {
            let cfg = |eval: MoveEval, t: usize| HillClimbConfig::default()
                .with_kind(kind)
                .with_threads(t)
                .with_evaluation(eval);
            let reference = HillClimb::new(cfg(MoveEval::Full, 1)).learn(&data);
            prop_assert!(dag_is_valid(&reference.dag));
            let parallel = HillClimb::new(cfg(MoveEval::Incremental, 4)).learn(&data);
            prop_assert_eq!(&parallel.dag, &reference.dag, "{:?}", kind);
            prop_assert_eq!(parallel.score, reference.score, "{:?} score", kind);
        }
    }
}

/// The searcher's output must always be a DAG (acyclicity is enforced per
/// move; this guards the enumerator's cycle checks).
fn dag_is_valid(dag: &Dag) -> bool {
    // `Dag` maintains acyclicity structurally; a topological order of full
    // length certifies it.
    dag.topological_order().len() == dag.n()
}
