//! Property tests for the score subsystem: cache transparency, scorer
//! determinism, and search invariance to threads/cache — the score-side
//! analogue of the constraint learner's cross-impl discipline.

use fastbn_data::Dataset;
use fastbn_graph::Dag;
use fastbn_score::{HillClimb, HillClimbConfig, LocalScorer, ScoreCache, ScoreKind};
use proptest::prelude::*;

/// Strategy: a random complete discrete dataset (3–5 variables of arity
/// 2–3, 120–320 samples).
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (3usize..6, 120usize..320).prop_flat_map(|(n_vars, m)| {
        (
            proptest::collection::vec(2u8..4, n_vars..=n_vars),
            proptest::collection::vec(proptest::collection::vec(0u8..2, m..=m), n_vars..=n_vars),
            Just(n_vars),
        )
            .prop_map(|(arities, raw_cols, _)| {
                // Clamp values into each variable's arity.
                let cols: Vec<Vec<u8>> = raw_cols
                    .into_iter()
                    .zip(&arities)
                    .map(|(col, &a)| col.into_iter().map(|v| v % a).collect())
                    .collect();
                Dataset::from_columns(vec![], arities, cols).unwrap()
            })
    })
}

/// All sorted parent subsets of size ≤ 2 for a child (enough shapes to
/// exercise the radix/stride paths without combinatorial blow-up).
fn parent_subsets(n: usize, child: usize) -> Vec<Vec<u32>> {
    let others: Vec<u32> = (0..n as u32).filter(|&v| v as usize != child).collect();
    let mut sets = vec![vec![]];
    for (i, &a) in others.iter().enumerate() {
        sets.push(vec![a]);
        for &b in &others[i + 1..] {
            sets.push(vec![a, b]);
        }
    }
    sets
}

proptest! {
    /// The cache is transparent: a value served from the cache equals a
    /// freshly computed one to 1e-9 (bitwise, in fact) for BIC and BDeu,
    /// every child and every parent set.
    #[test]
    fn cached_and_fresh_scores_agree(data in dataset_strategy()) {
        for kind in [ScoreKind::Bic, ScoreKind::BDeu { ess: 1.0 }] {
            let cache = ScoreCache::new(true);
            let mut warm = LocalScorer::new(&data, kind, 1 << 20);
            let mut fresh = LocalScorer::new(&data, kind, 1 << 20);
            for child in 0..data.n_vars() {
                for parents in parent_subsets(data.n_vars(), child) {
                    // First call computes and fills the cache...
                    let first = cache.get_or_compute(child as u32, &parents, || {
                        warm.local_score(child, &parents)
                    });
                    // ...second call must be served from it.
                    let cached = cache.get_or_compute(child as u32, &parents, || {
                        panic!("cache must hit on the second request")
                    });
                    let recomputed = fresh.local_score(child, &parents);
                    prop_assert_eq!(first.is_some(), recomputed.is_some());
                    if let (Some(c), Some(r)) = (cached, recomputed) {
                        prop_assert!((c - r).abs() < 1e-9,
                            "{:?} child {} parents {:?}: cached {} vs fresh {}",
                            kind, child, parents, c, r);
                    }
                }
            }
            let (hits, _misses) = cache.stats();
            prop_assert!(hits > 0);
        }
    }

    /// A local score is a pure function: two scorers over the same data
    /// produce bit-identical values regardless of call history.
    #[test]
    fn scorer_is_deterministic(data in dataset_strategy()) {
        let mut a = LocalScorer::new(&data, ScoreKind::Bic, 1 << 20);
        let mut b = LocalScorer::new(&data, ScoreKind::Bic, 1 << 20);
        // Different call orders (forward vs reverse) must not matter.
        let n = data.n_vars();
        let mut pairs: Vec<(usize, Vec<u32>)> = (0..n)
            .flat_map(|c| parent_subsets(n, c).into_iter().map(move |p| (c, p)))
            .collect();
        let forward: Vec<Option<f64>> =
            pairs.iter().map(|(c, p)| a.local_score(*c, p)).collect();
        pairs.reverse();
        let mut backward: Vec<Option<f64>> =
            pairs.iter().map(|(c, p)| b.local_score(*c, p)).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
    }

    /// Hill climbing learns the identical DAG (and bitwise-identical
    /// score) at every thread count, with the cache on or off.
    #[test]
    fn hill_climb_invariant_to_threads_and_cache(data in dataset_strategy()) {
        let reference = HillClimb::new(
            HillClimbConfig::default().with_threads(1),
        ).learn(&data);
        prop_assert!(dag_is_valid(&reference.dag));
        for threads in [2usize, 4] {
            let got = HillClimb::new(
                HillClimbConfig::default().with_threads(threads),
            ).learn(&data);
            prop_assert_eq!(&got.dag, &reference.dag, "t={}", threads);
            prop_assert_eq!(got.score, reference.score, "t={} score", threads);
        }
        let uncached = HillClimb::new(
            HillClimbConfig::default().with_threads(2).with_cache(false),
        ).learn(&data);
        prop_assert_eq!(&uncached.dag, &reference.dag, "cache off");
        prop_assert_eq!(uncached.score, reference.score, "cache off score");
    }

    /// BDeu searches are thread-invariant too (different numerics than
    /// BIC: log-gamma sums instead of log-likelihood terms).
    #[test]
    fn bdeu_search_is_thread_invariant(data in dataset_strategy()) {
        let cfg = |t: usize| HillClimbConfig::default()
            .with_kind(ScoreKind::BDeu { ess: 1.0 })
            .with_threads(t);
        let reference = HillClimb::new(cfg(1)).learn(&data);
        let parallel = HillClimb::new(cfg(4)).learn(&data);
        prop_assert_eq!(&parallel.dag, &reference.dag);
        prop_assert_eq!(parallel.score, reference.score);
    }
}

/// The searcher's output must always be a DAG (acyclicity is enforced per
/// move; this guards the enumerator's cycle checks).
fn dag_is_valid(dag: &Dag) -> bool {
    // `Dag` maintains acyclicity structurally; a topological order of full
    // length certifies it.
    dag.topological_order().len() == dag.n()
}
