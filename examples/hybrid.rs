//! Compare the learner families — constraint-based (PC-stable/Fast-BNS),
//! score-based (parallel hill climbing in its incremental, full-oracle,
//! tabu and first-ascent variants) and hybrid (skeleton-restricted,
//! MMHC-style) — on the same workload, including the incremental
//! delta-maintenance savings (`carried` column).
//!
//! Run with `cargo run --release --example hybrid`.

use fastbn::prelude::*;
use fastbn_core::score_search::{learn_structure, HybridConfig, StructureResult};
use fastbn_graph::dag_to_cpdag;
use fastbn_network::zoo;
use std::time::Instant;

fn main() {
    let net = zoo::by_name("alarm", 7).expect("alarm replica");
    let data = net.sample_dataset(1000, 42);
    let truth = dag_to_cpdag(net.dag());
    let threads = 4;
    // FASTBN_COUNT_ENGINE=tiled|bitmap|auto picks the counting backend for
    // every learner below (identical results, different fill strategy).
    let engine = EngineSelect::Auto.or_env();
    println!(
        "workload: alarm replica ({} nodes, {} edges), {} samples, t={threads}, {} engine\n",
        net.n(),
        net.dag().edge_count(),
        data.n_samples(),
        engine.name()
    );

    let hc = || {
        HillClimbConfig::default()
            .with_threads(threads)
            .with_count_engine(engine)
    };
    let strategies: Vec<(&str, Strategy)> = vec![
        (
            "pc-stable",
            Strategy::PcStable(
                PcConfig::fast_bns_steal()
                    .with_threads(threads)
                    .with_count_engine(engine),
            ),
        ),
        (
            "hc-full",
            Strategy::HillClimb(hc().with_evaluation(MoveEval::Full)),
        ),
        ("hc-incr", Strategy::HillClimb(hc())),
        ("hc-tabu", Strategy::HillClimb(hc().with_tabu_search(true))),
        (
            "hc-first",
            Strategy::HillClimb(hc().with_first_ascent(true)),
        ),
        (
            "hybrid",
            Strategy::Hybrid(
                HybridConfig::fast_bns()
                    .with_threads(threads)
                    .with_count_engine(engine),
            ),
        ),
        (
            "hybrid-aic",
            Strategy::Hybrid(
                HybridConfig::fast_bns()
                    .with_count_engine(engine)
                    .with_threads(threads)
                    .with_kind(ScoreKind::Aic),
            ),
        ),
        (
            "hybrid-bds",
            Strategy::Hybrid(
                HybridConfig::fast_bns()
                    .with_count_engine(engine)
                    .with_threads(threads)
                    .with_kind(ScoreKind::BDs { ess: 1.0 }),
            ),
        ),
    ];

    println!(
        "{:<12} {:>9} {:>6} {:>12} {:>9} {:>9} {:>7} {:>10}",
        "learner", "time", "SHD", "score", "scored", "carried", "pruned", "cache-hit%"
    );
    for (label, strategy) in &strategies {
        let t0 = Instant::now();
        let result: StructureResult = learn_structure(&data, strategy);
        let elapsed = t0.elapsed();
        let shd = shd_cpdag(&truth, &result.cpdag);
        let score = result.score.map_or("—".to_string(), |s| format!("{s:.1}"));
        let dash = || "—".to_string();
        let (scored, carried, pruned, hit_pct) =
            result
                .search_stats
                .as_ref()
                .map_or((dash(), dash(), dash(), dash()), |s| {
                    let total = s.cache_hits + s.cache_misses;
                    let pct = if total == 0 {
                        0.0
                    } else {
                        100.0 * s.cache_hits as f64 / total as f64
                    };
                    (
                        s.moves_evaluated.to_string(),
                        s.moves_carried.to_string(),
                        s.moves_pruned.to_string(),
                        format!("{pct:.1}"),
                    )
                });
        println!(
            "{:<12} {:>8.1?} {:>6} {:>12} {:>9} {:>9} {:>7} {:>10}",
            label, elapsed, shd, score, scored, carried, pruned, hit_pct
        );
    }

    // The hybrid's restriction skeleton is the Fast-BNS skeleton itself.
    let hybrid = fastbn_core::HybridLearner::new(
        HybridConfig::fast_bns()
            .with_threads(threads)
            .with_count_engine(engine),
    )
    .learn(&data);
    let m = skeleton_metrics(&net.dag().skeleton(), &hybrid.skeleton);
    println!(
        "\nhybrid restriction skeleton: {} edges, F1 {:.3} vs truth; \
         climb kept {} of them as arcs",
        hybrid.skeleton.edge_count(),
        m.f1,
        hybrid.dag.edge_count()
    );
}
