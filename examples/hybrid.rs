//! Compare the three learner families on the same workload: constraint-
//! based (PC-stable/Fast-BNS), score-based (parallel hill climbing) and
//! hybrid (skeleton-restricted hill climbing, MMHC-style).
//!
//! Run with `cargo run --release --example hybrid`.

use fastbn::prelude::*;
use fastbn_core::score_search::{learn_structure, HybridConfig, StructureResult};
use fastbn_graph::dag_to_cpdag;
use fastbn_network::zoo;
use std::time::Instant;

fn main() {
    let net = zoo::by_name("alarm", 7).expect("alarm replica");
    let data = net.sample_dataset(1000, 42);
    let truth = dag_to_cpdag(net.dag());
    let threads = 4;
    println!(
        "workload: alarm replica ({} nodes, {} edges), {} samples, t={threads}\n",
        net.n(),
        net.dag().edge_count(),
        data.n_samples()
    );

    let strategies = [
        Strategy::PcStable(PcConfig::fast_bns_steal().with_threads(threads)),
        Strategy::HillClimb(HillClimbConfig::default().with_threads(threads)),
        Strategy::Hybrid(HybridConfig::fast_bns().with_threads(threads)),
    ];

    println!(
        "{:<12} {:>9} {:>6} {:>12} {:>10} {:>10}",
        "learner", "time", "SHD", "score", "moves", "cache-hit%"
    );
    for strategy in &strategies {
        let t0 = Instant::now();
        let result: StructureResult = learn_structure(&data, strategy);
        let elapsed = t0.elapsed();
        let shd = shd_cpdag(&truth, &result.cpdag);
        let score = result.score.map_or("—".to_string(), |s| format!("{s:.1}"));
        let (moves, hit_pct) =
            result
                .search_stats
                .as_ref()
                .map_or(("—".to_string(), "—".to_string()), |s| {
                    let total = s.cache_hits + s.cache_misses;
                    let pct = if total == 0 {
                        0.0
                    } else {
                        100.0 * s.cache_hits as f64 / total as f64
                    };
                    (s.moves_evaluated.to_string(), format!("{pct:.1}"))
                });
        println!(
            "{:<12} {:>8.1?} {:>6} {:>12} {:>10} {:>10}",
            strategy.name(),
            elapsed,
            shd,
            score,
            moves,
            hit_pct
        );
    }

    // The hybrid's restriction skeleton is the Fast-BNS skeleton itself.
    let hybrid = fastbn_core::HybridLearner::new(HybridConfig::fast_bns().with_threads(threads))
        .learn(&data);
    let m = skeleton_metrics(&net.dag().skeleton(), &hybrid.skeleton);
    println!(
        "\nhybrid restriction skeleton: {} edges, F1 {:.3} vs truth; \
         climb kept {} of them as arcs",
        hybrid.skeleton.edge_count(),
        m.f1,
        hybrid.dag.edge_count()
    );
}
