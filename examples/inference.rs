//! Close the loop the paper's introduction motivates: learn a structure,
//! fit parameters, then *reason* with the model — exact posterior queries
//! by variable elimination.
//!
//! ```sh
//! cargo run --release --example inference
//! ```
//!
//! For batched queries against one fitted network (calibrate once, answer
//! thousands), see `examples/infer.rs` and [`fastbn::network::JoinTree`].

use fastbn::network::{variable_elimination, InferenceError};
use fastbn::prelude::*;

fn main() {
    // Ground truth and data.
    let truth = fastbn::network::zoo::by_name("alarm", 31).expect("zoo network");
    let data = truth.sample_dataset(5000, 32);

    // Learn structure, extend to a DAG and fit parameters in one step.
    let strategy = Strategy::PcStable(PcConfig::fast_bns().with_threads(2));
    let result = learn_structure(&data, &strategy);
    let dag = result.consistent_dag();
    let model = result.fit(&data, 0.5, "alarm-learned");
    println!(
        "model: {} nodes, {} edges learned from {} samples",
        model.n(),
        dag.edge_count(),
        data.n_samples()
    );

    // Query a few posteriors with and without evidence. Pick an evidence
    // variable with children so conditioning actually moves beliefs.
    let evidence_var = (0..model.n())
        .max_by_key(|&v| dag.children(v).count_ones())
        .unwrap();
    let query_var = dag.children(evidence_var).iter_ones().next().unwrap();

    let prior = variable_elimination(&model, query_var, &[]).expect("no evidence");
    println!(
        "\nP({}) prior            = {:?}",
        data.names()[query_var],
        prior
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    for val in 0..model.arity(evidence_var).min(2) {
        let posterior = match variable_elimination(&model, query_var, &[(evidence_var, val as u8)])
        {
            Ok(p) => p,
            // A fitted state can have probability zero (unseen, unsmoothed):
            // conditioning on it has no posterior, and the API says so.
            Err(InferenceError::ImpossibleEvidence) => {
                println!(
                    "P({} | {}={val}) undefined: evidence has probability zero",
                    data.names()[query_var],
                    data.names()[evidence_var],
                );
                continue;
            }
        };
        println!(
            "P({} | {}={val}) = {:?}",
            data.names()[query_var],
            data.names()[evidence_var],
            posterior
                .iter()
                .map(|p| (p * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
        let total: f64 = posterior.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
    println!("\ninference complete (exact, variable elimination)");
}
