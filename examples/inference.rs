//! Close the loop the paper's introduction motivates: learn a structure,
//! fit parameters, then *reason* with the model — exact posterior queries
//! by variable elimination.
//!
//! ```sh
//! cargo run --release --example inference
//! ```

use fastbn::graph::Dag;
use fastbn::network::{fit_cpts, variable_elimination};
use fastbn::prelude::*;

fn main() {
    // Ground truth and data.
    let truth = fastbn::network::zoo::by_name("alarm", 31).expect("zoo network");
    let data = truth.sample_dataset(5000, 32);

    // Learn structure, extend to a DAG, fit parameters.
    let result = PcStable::new(PcConfig::fast_bns().with_threads(2)).learn(&data);
    let mut dag = Dag::empty(data.n_vars());
    for (u, v) in result.cpdag().directed_edges() {
        dag.try_add_edge(u, v);
    }
    for (u, v) in result.cpdag().undirected_edges() {
        if !dag.try_add_edge(u, v) {
            dag.try_add_edge(v, u);
        }
    }
    let model = fit_cpts(&dag, &data, 0.5, "alarm-learned");
    println!(
        "model: {} nodes, {} edges learned from {} samples",
        model.n(),
        dag.edge_count(),
        data.n_samples()
    );

    // Query a few posteriors with and without evidence. Pick an evidence
    // variable with children so conditioning actually moves beliefs.
    let evidence_var = (0..model.n())
        .max_by_key(|&v| dag.children(v).count_ones())
        .unwrap();
    let query_var = dag.children(evidence_var).iter_ones().next().unwrap();

    let prior = variable_elimination(&model, query_var, &[]);
    println!(
        "\nP({}) prior            = {:?}",
        data.names()[query_var],
        prior
            .iter()
            .map(|p| (p * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    for val in 0..model.arity(evidence_var).min(2) {
        let posterior = variable_elimination(&model, query_var, &[(evidence_var, val as u8)]);
        println!(
            "P({} | {}={val}) = {:?}",
            data.names()[query_var],
            data.names()[evidence_var],
            posterior
                .iter()
                .map(|p| (p * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
        let total: f64 = posterior.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
    println!("\ninference complete (exact, variable elimination)");
}
