//! Learn all the small Table II benchmark replicas and report accuracy and
//! timing — the workload the paper's introduction motivates (medical
//! decision-support networks learned from observational records).
//!
//! ```sh
//! cargo run --release --example benchmark_networks
//! ```

use fastbn::prelude::*;
use fastbn_graph::dag_to_cpdag;
use std::time::Instant;

fn main() {
    let nets = ["alarm", "insurance", "hepar2", "munin1"];
    let m = 2000;
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>9} {:>7} {:>7} {:>6}",
        "network", "nodes", "edges", "time", "CI tests", "prec", "recall", "SHD"
    );
    for name in nets {
        let net = fastbn::network::zoo::by_name(name, 11).expect("zoo network");
        let data = net.sample_dataset(m, 13);
        let started = Instant::now();
        let result = PcStable::new(PcConfig::fast_bns().with_threads(2)).learn(&data);
        let elapsed = started.elapsed();
        let truth = net.dag().skeleton();
        let metrics = skeleton_metrics(&truth, result.skeleton());
        let shd = shd_cpdag(&dag_to_cpdag(net.dag()), result.cpdag());
        println!(
            "{:<10} {:>6} {:>6} {:>8.2?} {:>9} {:>7.3} {:>7.3} {:>6}",
            name,
            net.n(),
            net.dag().edge_count(),
            elapsed,
            result.stats().total_ci_tests(),
            metrics.precision,
            metrics.recall,
            shd
        );
    }
}
