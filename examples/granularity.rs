//! Compare the parallelism granularities (paper Figure 1/Table I, plus the
//! work-stealing scheduler) on one workload, verifying they compute
//! identical structures.
//!
//! ```sh
//! cargo run --release --example granularity
//! ```

use fastbn::prelude::*;
use std::time::Instant;

fn main() {
    let net = fastbn::network::zoo::by_name("insurance", 5).expect("zoo network");
    let data = net.sample_dataset(3000, 21);
    println!(
        "workload: {} ({} nodes), {} samples\n",
        net.name(),
        net.n(),
        data.n_samples()
    );

    let seq = PcStable::new(PcConfig::fast_bns_seq()).learn(&data);
    println!("sequential reference: {:?}", seq.stats().skeleton_duration);

    println!(
        "\n{:<14} {:>8} {:>12} {:>10}",
        "mode", "threads", "time", "speedup"
    );
    for mode in [
        ParallelMode::CiLevel,
        ParallelMode::WorkSteal,
        ParallelMode::EdgeLevel,
        ParallelMode::SampleLevel,
    ] {
        for threads in [1usize, 2] {
            let cfg = PcConfig::fast_bns().with_mode(mode).with_threads(threads);
            let started = Instant::now();
            let result = PcStable::new(cfg).learn(&data);
            let elapsed = started.elapsed();
            assert_eq!(
                result.skeleton(),
                seq.skeleton(),
                "all granularities must learn the same skeleton"
            );
            assert_eq!(result.cpdag(), seq.cpdag());
            let speedup = seq.stats().skeleton_duration.as_secs_f64() / elapsed.as_secs_f64();
            println!(
                "{:<14} {:>8} {:>12.2?} {:>9.2}x",
                mode.name(),
                threads,
                elapsed,
                speedup
            );
        }
    }
    println!("\nall modes produced identical skeletons and CPDAGs");
}
