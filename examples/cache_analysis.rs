//! Replay a real learning run's data accesses through the cache simulator
//! to see *why* the transposed (column-major) storage wins — the
//! §IV-C/Table IV story in miniature.
//!
//! ```sh
//! cargo run --release --example cache_analysis
//! ```

use fastbn::cachesim::{replay_ci_test, CacheReport, MemoryHierarchy, TraceLayout, TraceSpec};
use fastbn::core::{record_ci_trace, PcConfig};

fn main() {
    let net = fastbn::network::zoo::by_name("hepar2", 3).expect("zoo network");
    let data = net.sample_dataset(1000, 17);

    // Record the exact CI tests a sequential Fast-BNS run performs.
    let (trace, skeleton, _) = record_ci_trace(&data, &PcConfig::fast_bns_seq());
    println!(
        "recorded {} CI tests over {} depths (final skeleton: {} edges)\n",
        trace.len(),
        trace.last().map(|r| r.depth() + 1).unwrap_or(0),
        skeleton.edge_count()
    );

    // Replay under both layouts through identical cold hierarchies.
    for (label, layout) in [
        ("column-major (Fast-BNS)", TraceLayout::ColumnMajor),
        ("row-major   (baseline)", TraceLayout::RowMajor),
    ] {
        let spec = TraceSpec::new(data.n_vars(), data.n_samples(), layout);
        let mut h = MemoryHierarchy::typical();
        let mut refs = 0u64;
        for record in &trace {
            refs += replay_ci_test(&mut h, &spec, &record.touched_vars());
        }
        let report = CacheReport::snapshot(label, &h);
        println!("{report}");
        println!("  ({refs} simulated references)");
    }

    println!(
        "\nthe same algorithm, the same work — only the memory layout differs.\n\
         The modelled cost ratio is the §IV-D3 S_cache factor in action."
    );
}
