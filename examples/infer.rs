//! Batched posterior queries at serving speed: calibrate a junction tree
//! once, then answer a whole batch of queries against it.
//!
//! The pipeline is the full loop the paper motivates — learn a structure,
//! fit its parameters, then *reason* with the model — with the inference
//! stage running on the [`fastbn::network::JoinTree`] instead of per-query
//! variable elimination:
//!
//! ```sh
//! cargo run --release --example infer
//! ```

use fastbn::network::{variable_elimination, InferenceError};
use fastbn::prelude::*;
use std::time::Instant;

fn main() {
    // Ground truth and data.
    let truth = fastbn::network::zoo::by_name("alarm", 31).expect("zoo network");
    let data = truth.sample_dataset(5000, 32);

    // Learn a structure (hybrid: Fast-BNS skeleton restricting a hill
    // climb), then fit CPTs — `StructureResult::fit` bridges straight from
    // the learned structure to a queryable network.
    let strategy = Strategy::Hybrid(HybridConfig::fast_bns().with_threads(2));
    let result = learn_structure(&data, &strategy);
    let model = result.fit(&data, 0.5, "alarm-learned");

    // Calibrate the junction tree once.
    let t0 = Instant::now();
    let jt = JoinTree::build(&model, 2);
    let calibrate = t0.elapsed();
    let s = jt.stats();
    println!(
        "junction tree: {} cliques, width {}, largest table {} cells ({:.1?} to calibrate)",
        s.n_cliques, s.width, s.max_clique_cells, calibrate
    );

    // A batch of queries: every variable's marginal, plus conditionals on
    // a high-fanout evidence variable.
    let evidence_var = (0..model.n())
        .max_by_key(|&v| model.dag().children(v).count_ones())
        .unwrap();
    let mut queries: Vec<Query> = (0..model.n())
        .filter(|&t| t != evidence_var)
        .map(Query::marginal)
        .collect();
    for val in 0..model.arity(evidence_var).min(2) {
        for t in model.dag().children(evidence_var).iter_ones() {
            queries.push(Query::with_evidence(t, vec![(evidence_var, val as u8)]));
        }
    }

    let t0 = Instant::now();
    let answers = jt.posteriors(&queries);
    let batch = t0.elapsed();
    println!(
        "answered {} queries in {:.1?} ({:.1?}/query)",
        queries.len(),
        batch,
        batch / queries.len() as u32
    );

    // Every answer agrees with per-query variable elimination.
    for (q, a) in queries.iter().zip(&answers) {
        let jt_probs = &a.as_ref().expect("possible evidence").probs;
        let ve = variable_elimination(&model, q.target, &q.evidence).unwrap();
        for (x, y) in jt_probs.iter().zip(&ve) {
            assert!((x - y).abs() < 1e-9, "JT and VE disagree on {q:?}");
        }
    }
    println!(
        "all {} posteriors agree with variable elimination",
        queries.len()
    );

    // A human-readable readout of one belief update: how observing the
    // evidence variable moves a child's distribution off its prior.
    let query_var = model
        .dag()
        .children(evidence_var)
        .iter_ones()
        .next()
        .unwrap();
    let rounded =
        |p: &[f64]| -> Vec<f64> { p.iter().map(|x| (x * 1000.0).round() / 1000.0).collect() };
    let prior = jt.posteriors(&[Query::marginal(query_var)]);
    println!(
        "\nP({}) prior            = {:?}",
        data.names()[query_var],
        rounded(&prior[0].as_ref().expect("no evidence").probs)
    );
    for val in 0..model.arity(evidence_var).min(2) {
        let q = Query::with_evidence(query_var, vec![(evidence_var, val as u8)]);
        match &jt.posteriors(&[q])[0] {
            Ok(p) => println!(
                "P({} | {}={val}) = {:?}",
                data.names()[query_var],
                data.names()[evidence_var],
                rounded(&p.probs)
            ),
            // A fitted state can have probability zero (unseen, unsmoothed):
            // conditioning on it has no posterior, and the API says so.
            Err(InferenceError::ImpossibleEvidence) => println!(
                "P({} | {}={val}) undefined: evidence has probability zero",
                data.names()[query_var],
                data.names()[evidence_var],
            ),
        }
    }

    // Impossible evidence is an error, not a quietly-normalized zero
    // vector: condition a child on a state its observed parents forbid.
    let contradiction = vec![(evidence_var, 0u8), (evidence_var, 1u8)];
    let bad = jt.posteriors(&[Query::with_evidence(0, contradiction)]);
    assert_eq!(
        bad[0].as_ref().err(),
        Some(&InferenceError::ImpossibleEvidence)
    );
    println!(
        "contradictory evidence correctly reported as {}",
        InferenceError::ImpossibleEvidence
    );
}
