//! Calibrate the counting-engine cost model: measure every engine ×
//! kernel tier × index representation over a (m, arity, |Z|) grid and
//! print the flip surface the `EngineSelect::Auto` policy should
//! reproduce, plus the per-tier kernel speedups that justify the
//! `word_ops_per_read` constants in `fastbn_stats::simd`.
//!
//! ```sh
//! cargo run --release --example calibrate                    # small grid
//! FASTBN_CALIBRATE_FULL=1 cargo run --release --example calibrate
//! ```
//!
//! Each cell fills one CI-shaped table `X × Y | Z₁..Z_d` repeatedly and
//! reports nanoseconds per fill. The `winner` column is the *measured*
//! flip surface (which engine was actually faster); compare it against
//! the `auto` column (what the cost model picked) to spot mispriced
//! regions. All engines produce byte-identical counts, so the sweep
//! asserts agreement as it goes — a calibration run is also a test.

use fastbn::data::{set_default_index_kind, Dataset, IndexKind, Layout};
use fastbn::stats::simd::{self, detected_tier, SimdTier};
use fastbn::stats::{
    mixed_radix_strides, BitmapEngine, ContingencyTable, CountEngine, EngineSelect, FillSpec,
    TiledScan,
};
use std::time::Instant;

/// Deterministic value stream (xorshift64*) — no `rand` in examples.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// A synthetic dataset: `2 + d_max` variables of one arity, m samples.
fn synth(m: usize, arity: u8, n_vars: usize, seed: u64) -> Dataset {
    let mut next = stream(seed);
    let columns: Vec<Vec<u8>> = (0..n_vars)
        .map(|_| (0..m).map(|_| (next() % arity as u64) as u8).collect())
        .collect();
    Dataset::from_columns(vec![], vec![arity; n_vars], columns).expect("valid synthetic columns")
}

/// Median-of-reps nanoseconds for one table fill.
fn time_fill(engine: &mut dyn CountEngine, data: &Dataset, d: usize) -> (u64, ContingencyTable) {
    let cond: Vec<usize> = (2..2 + d).collect();
    let (rx, ry) = (data.arity(0), data.arity(1));
    let mut zmul = vec![0usize; cond.len()];
    let nz = mixed_radix_strides(|i| data.arity(cond[i]), &mut zmul, rx * ry, usize::MAX)
        .expect("grid tables are small")
        .max(1);
    let mut table = ContingencyTable::new(rx, ry, nz);
    let spec = FillSpec {
        x: 0,
        y: Some(1),
        cond: &cond,
        zmul: &zmul,
    };
    // Warm up (build the bitmap index outside the timed region), then
    // run until the cell has ≥ 2 ms or 64 reps, whichever first. The
    // engines *accumulate* into the table, so clear between reps
    // (outside the timed span — learners reuse arena tables the same
    // way).
    engine.fill_one(data, Layout::ColumnMajor, spec, &mut table);
    let mut best = u64::MAX;
    let mut spent = 0u64;
    let mut reps = 0u32;
    while spent < 2_000_000 && reps < 64 {
        table.clear();
        let t0 = Instant::now();
        engine.fill_one(data, Layout::ColumnMajor, spec, &mut table);
        let ns = t0.elapsed().as_nanos() as u64;
        best = best.min(ns);
        spent += ns;
        reps += 1;
    }
    (best, table)
}

fn main() {
    let full = std::env::var("FASTBN_CALIBRATE_FULL").is_ok();
    let ms: &[usize] = if full {
        &[4_096, 16_384, 65_536]
    } else {
        &[4_096, 16_384]
    };
    let arities: &[u8] = if full { &[2, 4, 8] } else { &[2, 4] };
    let depths: &[usize] = if full { &[0, 1, 2, 3] } else { &[0, 2] };
    let tiers: Vec<SimdTier> = [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512]
        .into_iter()
        .filter(|&t| t <= detected_tier())
        .collect();

    println!("detected kernel tier: {}", detected_tier().name());
    println!(
        "grid: m ∈ {ms:?}, arity ∈ {arities:?}, |Z| ∈ {depths:?} \
         ({} tiers × dense/compressed)\n",
        tiers.len()
    );

    // Header: one bitmap column per (tier, kind).
    print!("{:>7} {:>6} {:>3} {:>10}", "m", "arity", "|Z|", "tiled_ns");
    for tier in &tiers {
        print!(" {:>10} {:>10}", format!("{}", tier.name()), "comp");
    }
    println!(" {:>7} {:>6} {:>6}", "winner", "auto", "mem_x");

    // Per-tier best-case speedups over scalar, collected across cells.
    let mut speedup_num = vec![0f64; tiers.len()];
    let mut speedup_den = vec![0f64; tiers.len()];

    for &m in ms {
        for &arity in arities {
            for &d in depths {
                let data = synth(m, arity, 2 + d, 0xfa57 + m as u64 + d as u64);
                set_default_index_kind(IndexKind::Compressed);
                let comp_data = data.clone();
                comp_data.bitmap_index();
                set_default_index_kind(IndexKind::Dense);
                data.bitmap_index();

                let (tiled_ns, reference) = time_fill(&mut TiledScan::new(), &data, d);
                print!("{m:>7} {arity:>6} {d:>3} {tiled_ns:>10}");

                let mut best_bitmap = u64::MAX;
                let mut scalar_dense_ns = 0u64;
                for (ti, &tier) in tiers.iter().enumerate() {
                    simd::set_forced_tier(Some(tier));
                    let (dense_ns, t1) = time_fill(&mut BitmapEngine::new(), &data, d);
                    let (comp_ns, t2) = time_fill(&mut BitmapEngine::new(), &comp_data, d);
                    assert_eq!(t1.raw(), reference.raw(), "dense {tier:?} diverged");
                    assert_eq!(t2.raw(), reference.raw(), "compressed {tier:?} diverged");
                    if tier == SimdTier::Scalar {
                        scalar_dense_ns = dense_ns;
                    } else if scalar_dense_ns > 0 {
                        speedup_num[ti] += scalar_dense_ns as f64;
                        speedup_den[ti] += dense_ns as f64;
                    }
                    best_bitmap = best_bitmap.min(dense_ns).min(comp_ns);
                    print!(" {dense_ns:>10} {comp_ns:>10}");
                }
                simd::set_forced_tier(None);

                // What does the Auto policy actually pick here? (The
                // cost model consults the built index's real container
                // payloads via `bitmap_mean_state_words`.)
                let cond: Vec<usize> = (2..2 + d).collect();
                let mut zmul = vec![0usize; cond.len()];
                mixed_radix_strides(
                    |i| data.arity(cond[i]),
                    &mut zmul,
                    data.arity(0) * data.arity(1),
                    usize::MAX,
                )
                .expect("grid tables are small");
                let spec = FillSpec {
                    x: 0,
                    y: Some(1),
                    cond: &cond,
                    zmul: &zmul,
                };
                let picked = if EngineSelect::prefers_bitmap(&data, &spec) {
                    "bitmap"
                } else {
                    "tiled"
                };
                let winner = if best_bitmap < tiled_ns {
                    "bitmap"
                } else {
                    "tiled"
                };
                let mem_ratio = data.bitmap_index().memory_bytes() as f64
                    / comp_data.bitmap_index().memory_bytes().max(1) as f64;
                println!(" {winner:>7} {picked:>6} {mem_ratio:>6.1}");
            }
        }
    }

    // Compression surface: uniform-random low-arity data is
    // incompressible by design (mixed-density blocks stay dense), so
    // measure the regimes the containers target — high arity (sparse
    // states), skew (a few hot states + a long sparse tail), and
    // sorted samples (run-length wins).
    println!("\nindex memory, dense vs compressed (m = 65536):");
    println!(
        "  {:>6} {:>9} {:>11} {:>11} {:>6}",
        "arity", "shape", "dense_B", "comp_B", "ratio"
    );
    let m = 65_536usize;
    for arity in [4u8, 16, 64] {
        for shape in ["uniform", "skewed", "sorted"] {
            let mut next = stream(0xc0de + arity as u64);
            let mut col: Vec<u8> = (0..m)
                .map(|_| match shape {
                    // 90% of the mass in state 0, the rest uniform.
                    "skewed" => {
                        if !next().is_multiple_of(10) {
                            0
                        } else {
                            (next() % arity as u64) as u8
                        }
                    }
                    _ => (next() % arity as u64) as u8,
                })
                .collect();
            if shape == "sorted" {
                col.sort_unstable();
            }
            let dense =
                fastbn::data::BitmapIndex::build_cols_with(IndexKind::Dense, m, &[arity], &col);
            let comp = fastbn::data::BitmapIndex::build_cols_with(
                IndexKind::Compressed,
                m,
                &[arity],
                &col,
            );
            println!(
                "  {:>6} {:>9} {:>11} {:>11} {:>5.1}x",
                arity,
                shape,
                dense.memory_bytes(),
                comp.memory_bytes(),
                dense.memory_bytes() as f64 / comp.memory_bytes().max(1) as f64
            );
        }
    }

    println!("\nkernel speedup over scalar (dense index, grid aggregate):");
    println!("  scalar  1.00x  (word_ops_per_read = 1, by definition)");
    for (ti, &tier) in tiers.iter().enumerate() {
        if tier != SimdTier::Scalar && speedup_den[ti] > 0.0 {
            let s = speedup_num[ti] / speedup_den[ti];
            println!(
                "  {:<7} {s:.2}x  (word_ops_per_read(simd) currently {})",
                tier.name(),
                simd::word_ops_per_read(tier)
            );
        }
    }
    println!(
        "\nReading the table: `winner` is the measured flip surface, `auto`\n\
         the cost model's pick; a disagreement is a mispriced region.\n\
         `mem_x` is dense / compressed index bytes (higher = compression\n\
         pays). Run with FASTBN_CALIBRATE_FULL=1 for the full grid."
    );
}
