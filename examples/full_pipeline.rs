//! The complete downstream workflow: learn a structure with Fast-BNS,
//! pick a DAG from the equivalence class, fit CPT parameters by maximum
//! likelihood, evaluate the fitted model, and export everything to DOT.
//!
//! ```sh
//! cargo run --release --example full_pipeline
//! ```

use fastbn::graph::{dag_to_dot, pdag_to_dot, Dag};
use fastbn::network::fit_cpts;
use fastbn::prelude::*;

fn main() {
    // Ground truth + training data.
    let truth = fastbn::network::zoo::by_name("insurance", 19).expect("zoo network");
    let train = truth.sample_dataset(4000, 20);
    let test = truth.sample_dataset(1000, 21);

    // 1. Structure learning (Fast-BNS).
    let result = PcStable::new(
        PcConfig::fast_bns()
            .with_threads(2)
            .with_count_engine(EngineSelect::Auto.or_env()),
    )
    .learn(&train);
    println!(
        "learned CPDAG: {} compelled + {} reversible edges ({} CI tests)",
        result.cpdag().directed_edges().len(),
        result.cpdag().undirected_edges().len(),
        result.stats().total_ci_tests()
    );

    // 2. Pick a member DAG of the equivalence class: keep compelled edges,
    //    orient reversible ones low→high index where acyclic.
    let mut dag = Dag::empty(train.n_vars());
    for (u, v) in result.cpdag().directed_edges() {
        dag.try_add_edge(u, v);
    }
    for (u, v) in result.cpdag().undirected_edges() {
        if !dag.try_add_edge(u, v) {
            let ok = dag.try_add_edge(v, u);
            assert!(ok, "one orientation of a reversible edge must be acyclic");
        }
    }
    println!("extension DAG: {} edges", dag.edge_count());

    // 3. Parameter fitting (MLE with light Laplace smoothing).
    let fitted = fit_cpts(&dag, &train, 0.5, "insurance-learned");

    // 4. Evaluate on held-out data (per-sample average log-likelihood).
    let ll_fit = fitted.log_likelihood(&test) / test.n_samples() as f64;
    let ll_truth = truth.log_likelihood(&test) / test.n_samples() as f64;
    println!("held-out avg log-likelihood: fitted {ll_fit:.4} vs truth {ll_truth:.4}");
    // The learned structure misses some weak edges at this sample size, so
    // a gap to the generating model is expected — but it should be a few
    // nats over 27 variables, not a blowout.
    assert!(
        ll_fit > ll_truth - 4.0,
        "fitted model should be in the ballpark of the generating model"
    );

    // 5. Export to Graphviz DOT.
    let cpdag_dot = pdag_to_dot(result.cpdag(), Some(train.names()));
    let dag_dot = dag_to_dot(&dag, Some(train.names()));
    println!(
        "\nDOT exports ready: CPDAG ({} bytes), DAG ({} bytes); first lines:",
        cpdag_dot.len(),
        dag_dot.len()
    );
    for line in cpdag_dot.lines().take(4) {
        println!("  {line}");
    }
    println!("pipeline complete");
}
