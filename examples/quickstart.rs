//! Quickstart: generate a benchmark network, sample data, learn the
//! structure back with Fast-BNS, and score the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fastbn::prelude::*;
use fastbn_graph::dag_to_cpdag;

fn main() {
    // 1. A benchmark-network replica (Table II "alarm": 37 nodes, 46 edges).
    let net = fastbn::network::zoo::by_name("alarm", 7).expect("alarm is in the zoo");
    println!(
        "network: {} ({} nodes, {} edges)",
        net.name(),
        net.n(),
        net.dag().edge_count()
    );

    // 2. Forward-sample a complete dataset (no missing values).
    let data = net.sample_dataset(5000, 42);
    println!(
        "data:    {} samples x {} variables",
        data.n_samples(),
        data.n_vars()
    );

    // 3. Learn with Fast-BNS: CI-level parallelism, endpoint grouping,
    //    cache-friendly storage, on-the-fly conditioning sets. The
    //    counting backend defaults to per-query auto-selection;
    //    FASTBN_COUNT_ENGINE=tiled|bitmap|auto overrides it (results are
    //    identical — only the fill strategy changes).
    let engine = EngineSelect::Auto.or_env();
    println!("engine:  {} counting backend", engine.name());
    let config = PcConfig::fast_bns()
        .with_threads(2)
        .with_count_engine(engine);
    let result = PcStable::new(config).learn(&data);
    let stats = result.stats();
    println!(
        "learned: {} edges, {} CI tests, skeleton {:.1?} + orientation {:.1?}",
        result.skeleton().edge_count(),
        stats.total_ci_tests(),
        stats.skeleton_duration,
        stats.orientation_duration,
    );
    for d in &stats.depths {
        println!(
            "  depth {}: {} edges in, {} removed, {} CI tests ({:?})",
            d.depth, d.edges_at_start, d.edges_removed, d.ci_tests, d.duration
        );
    }

    // 4. Score against the ground truth.
    let truth = net.dag().skeleton();
    let m = skeleton_metrics(&truth, result.skeleton());
    println!(
        "skeleton vs truth: precision {:.3}, recall {:.3}, F1 {:.3}",
        m.precision, m.recall, m.f1
    );
    let shd = shd_cpdag(&dag_to_cpdag(net.dag()), result.cpdag());
    println!("CPDAG SHD vs truth: {shd}");

    assert!(
        m.f1 > 0.6,
        "structure recovery should be decent at 5000 samples"
    );
    println!("ok");

    // With FASTBN_TRACE=1, print the aggregated span-timing tree
    // (learn → skeleton / orientation) collected during the run.
    fastbn::obs::print_report_if_traced("quickstart");
}
