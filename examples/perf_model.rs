//! The §IV-D analytic performance model, reproducing the paper's worked
//! example and sweeping its parameters.
//!
//! ```sh
//! cargo run --release --example perf_model
//! ```

use fastbn::core::perf_model::{overall_speedup, s_cache, s_ci, s_grouping, ModelParams};

fn main() {
    // The paper's worked example: t=4, d=2, |Ed|=1200, ρ=0.6, mean degree
    // 10, B=64 bytes, T_DRAM/T_cache = 8.
    let p = ModelParams::paper_example();
    println!("paper worked example (§IV-D4):");
    println!("  S_CI       = {:.2}   (paper: 3.87)", s_ci(&p));
    println!(
        "  S_grouping = {:.2}   (paper: 1.43)",
        s_grouping(p.deletion_ratio)
    );
    println!(
        "  S_cache    = {:.2}   (paper: 5.57)",
        s_cache(p.depth, p.line_bytes, p.dram_cache_ratio)
    );
    println!("  S          = {:.1}   (paper: 30.8)", overall_speedup(&p));

    println!("\nthread sweep (other parameters fixed):");
    println!("  {:>3} {:>8} {:>8}", "t", "S_CI", "S");
    for t in [1usize, 2, 4, 8, 16, 32] {
        let p = ModelParams {
            threads: t,
            ..ModelParams::paper_example()
        };
        println!("  {:>3} {:>8.2} {:>8.1}", t, s_ci(&p), overall_speedup(&p));
    }

    println!("\ndeletion-ratio sweep (grouping benefit):");
    println!("  {:>5} {:>10}", "ρd", "S_grouping");
    for rho in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        println!("  {:>5.1} {:>10.2}", rho, s_grouping(rho));
    }

    println!("\ndepth sweep of the cache factor (B=64, ratio 8):");
    println!("  {:>3} {:>8}", "d", "S_cache");
    for d in 0..=6 {
        println!("  {:>3} {:>8.2}", d, s_cache(d, 64, 8.0));
    }
}
