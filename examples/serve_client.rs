//! The serving loop end to end: spawn the daemon in-process on an
//! ephemeral port, then drive it over TCP like any external client —
//! learn with streamed progress, fit, run a posterior batch, read the
//! serving stats, and shut the daemon down.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```
//!
//! The wire protocol is specified in `docs/PROTOCOL.md`; a standalone
//! daemon is available as `cargo run --release --bin fastbn-served`.

use fastbn::prelude::*;
use fastbn::serve::{Client, ServeConfig, Server, StrategySpec};

fn main() {
    // Ground truth and training data.
    let truth = fastbn::network::zoo::by_name("alarm", 31).expect("zoo network");
    let data = truth.sample_dataset(2000, 32);

    // An in-process daemon on an ephemeral loopback port. Everything
    // after this line works identically against `fastbn-served`.
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();
    println!("daemon listening on {addr}");

    let mut client = Client::connect(addr).expect("connect");

    // Learn with progress streaming: one event per skeleton depth, one
    // per applied search move.
    let mut events = 0u64;
    let learned = client
        .learn_with_progress(StrategySpec::hybrid(2), &data, |ev| {
            events += 1;
            if ev.phase == fastbn::serve::JobPhase::Skeleton && ev.iteration > 0 {
                println!(
                    "  [{}] depth {}: {} CI tests, {} edges removed",
                    ev.phase.name(),
                    ev.iteration,
                    ev.ci_tests,
                    ev.edges
                );
            }
            true
        })
        .expect("learn");
    println!(
        "learned: {} compelled + {} reversible edges, score {:?} ({events} progress events)",
        learned.directed_edges.len(),
        learned.undirected_edges.len(),
        learned.score,
    );

    // Fit + calibrate; the identical request again hits the model cache.
    let fitted = client
        .fit(StrategySpec::hybrid(2), &data, 0.5, 2)
        .expect("fit");
    println!(
        "fitted model {:#018x}: {} cliques, width {}, cache_hit={}",
        fitted.model_id, fitted.n_cliques, fitted.width, fitted.cache_hit
    );
    let refit = client
        .fit(StrategySpec::hybrid(2), &data, 0.5, 2)
        .expect("refit");
    assert!(refit.cache_hit);
    println!(
        "identical refit served from cache: cache_hit={}",
        refit.cache_hit
    );

    // Upload-once dataset handle: put the dataset once, then learn by
    // its fingerprint — a 9-byte dataset reference instead of the
    // columns, same cached reply.
    let put = client.put_dataset(&data).expect("put dataset");
    let by_handle = client
        .learn_by_handle(StrategySpec::hybrid(2), put.fingerprint)
        .expect("learn by handle");
    assert!(by_handle.cache_hit);
    assert_eq!(by_handle.structure_key, learned.structure_key);
    println!(
        "dataset handle {:#018x} ({} rows uploaded once): by-handle learn cache_hit={}",
        put.fingerprint, put.n_samples, by_handle.cache_hit
    );

    // A posterior batch over the wire.
    let queries: Vec<Query> = (0..5).map(Query::marginal).collect();
    let answers = client.infer(fitted.model_id, queries).expect("infer");
    for result in answers.results.iter().take(2) {
        let p = result.as_ref().expect("possible evidence");
        println!("  P(V{}) = {:?}", p.target, p.probs);
    }

    // Serving stats, including the v2 observability counters: how the
    // search spent its move budget and which counting engine the cost
    // model picked per query.
    let stats = client.stats().expect("stats");
    println!(
        "stats: {} jobs accepted, {} structure misses / {} hits, {} queries answered",
        stats.jobs_accepted, stats.structure_misses, stats.structure_hits, stats.queries_answered
    );
    println!(
        "search: {} moves evaluated, {} pruned, {} carried",
        stats.moves_evaluated, stats.moves_pruned, stats.moves_carried
    );
    println!(
        "count engines: {} tiled picks, {} bitmap picks",
        stats.engine_tiled_picks, stats.engine_bitmap_picks
    );
    let tier = match stats.simd_kernel {
        0 => "scalar",
        1 => "avx2",
        _ => "avx512",
    };
    println!(
        "simd kernels: {tier} active; fills {} scalar / {} avx2 / {} avx512",
        stats.simd_scalar_fills, stats.simd_avx2_fills, stats.simd_avx512_fills
    );
    println!(
        "caches: {} dataset hits, {} evictions, ~{} bytes resident",
        stats.dataset_hits, stats.cache_evictions, stats.cache_bytes
    );

    // The same registry, rendered as a Prometheus text dump (what a
    // scrape of `fastbn-served --metrics-addr` returns).
    let metrics = client.metrics_text().expect("metrics");
    let request_lines: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("fastbn_serve_request") && l.contains("_count"))
        .collect();
    println!("request-latency series: {}", request_lines.join("; "));

    client.shutdown().expect("shutdown");
    handle.join().expect("daemon exits");
    println!("daemon shut down cleanly");

    // With FASTBN_TRACE=1, print where the wall-clock went.
    fastbn::obs::print_report_if_traced("serve_client");
}
