//! Learn a structure from your own CSV data and export the results —
//! the downstream-user path: CSV in, CPDAG out, network saved to the
//! `.bnet` text format.
//!
//! ```sh
//! cargo run --release --example custom_data
//! ```

use fastbn::data::{dataset_from_csv, dataset_to_csv};
use fastbn::network::{bnet_from_str, bnet_to_string};
use fastbn::prelude::*;

fn main() {
    // Pretend this CSV arrived from the outside world (here: sampled from
    // a known network and serialized, so we can sanity-check the answer).
    let source = fastbn::network::zoo::by_name("insurance", 23).expect("zoo network");
    let csv_text = dataset_to_csv(&source.sample_dataset(3000, 29));
    println!("input: {} bytes of CSV", csv_text.len());

    // 1. Parse the CSV (integer or categorical cells both work).
    let data = dataset_from_csv(&csv_text).expect("valid CSV");
    println!(
        "parsed: {} samples x {} variables",
        data.n_samples(),
        data.n_vars()
    );

    // 2. Learn.
    let result = PcStable::new(
        PcConfig::fast_bns()
            .with_threads(2)
            .with_count_engine(EngineSelect::Auto.or_env()),
    )
    .learn(&data);
    println!(
        "learned skeleton: {} edges ({} CI tests)",
        result.skeleton().edge_count(),
        result.stats().total_ci_tests()
    );

    // 3. Inspect the CPDAG: compelled (directed) vs reversible edges.
    let cpdag = result.cpdag();
    let directed = cpdag.directed_edges();
    let undirected = cpdag.undirected_edges();
    println!(
        "CPDAG: {} compelled, {} reversible edges",
        directed.len(),
        undirected.len()
    );
    for &(u, v) in directed.iter().take(5) {
        println!("  {} -> {}", data.names()[u], data.names()[v]);
    }
    for &(u, v) in undirected.iter().take(5) {
        println!("  {} -- {}", data.names()[u], data.names()[v]);
    }

    // 4. Round-trip the ground-truth network through the .bnet format,
    //    demonstrating persistence without a serialization dependency.
    let text = bnet_to_string(&source);
    let reloaded = bnet_from_str(&text).expect("round-trip");
    assert_eq!(reloaded.dag().edges(), source.dag().edges());
    println!(
        "\nsaved + reloaded the generating network via .bnet ({} bytes)",
        text.len()
    );

    // 5. Sanity: learned skeleton should overlap the truth substantially.
    let m = skeleton_metrics(&source.dag().skeleton(), result.skeleton());
    println!("skeleton F1 vs generating network: {:.3}", m.f1);
}
