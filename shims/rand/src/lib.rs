//! Offline stand-in for the `rand` crate (see shims/README.md).
//!
//! Provides exactly the subset fastbn uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and integer
//! `Rng::gen_range` — on top of a from-scratch xoshiro256** generator
//! seeded through SplitMix64. The stream is **fully deterministic across
//! platforms and versions** (unlike the real `StdRng`, which documents no
//! stability guarantee), which is exactly what the reproducibility tests
//! in this workspace want.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from an RNG's "standard" distribution (uniform over the
/// type's domain; `[0, 1)` for floats). Only the types the workspace draws
/// via `gen` are implemented.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Sample uniformly from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform draw from `[0, span)` by modulo reduction with a rejection pass
/// for exact uniformity.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let raw = rng.next_u64();
        if raw < zone || zone == 0 {
            return raw % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // The span is computed in i128 so signed ranges wider than
                // the type's MAX (e.g. -100i8..100) don't sign-extend into
                // a bogus u64 span. u64→i128 zero-extends, so unsigned
                // types are value-preserving too.
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                lo.wrapping_add(below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                if span > u64::MAX as u128 {
                    // The full domain of a 64-bit type: every draw is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the subset fastbn uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, state seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn signed_span_wider_than_type_max() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn inclusive_range_reaches_type_max() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_max = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(250u8..=u8::MAX);
            assert!(v >= 250);
            saw_max |= v == u8::MAX;
        }
        assert!(saw_max, "u8::MAX never sampled from 250..=MAX");
        // Full 64-bit domain does not overflow the span computation.
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
