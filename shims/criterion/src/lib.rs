//! Offline stand-in for the `criterion` crate (see shims/README.md).
//!
//! Implements the slice of criterion's API the fastbn benches use —
//! `benchmark_group`, `sample_size`, `measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple median-of-samples timer. Output
//! is one line per benchmark: `group/function/param  <median>  (<samples>)`.
//! No statistics beyond the median, no HTML reports, no baselines; when the
//! environment gains registry access this shim can be swapped for the real
//! crate without touching the benches.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, recording the median over up to `samples` batches
    /// while staying within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and pick a batch size targeting ~1ms per batch so cheap
        // kernels are not swamped by clock resolution.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t0.elapsed() / batch as u32);
            if started.elapsed() > self.budget {
                break;
            }
        }
        per_iter.sort();
        self.last = Some(per_iter[per_iter.len() / 2]);
    }
}

/// A named collection of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    pub fn bench_function<R>(&mut self, id: impl IntoBenchmarkId, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().label;
        let mut b = Bencher {
            samples: self.samples,
            budget: self.budget,
            last: None,
        };
        routine(&mut b);
        report(&self.name, &label, b.last, self.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            budget: self.budget,
            last: None,
        };
        routine(&mut b, input);
        report(&self.name, &id.label, b.last, self.samples);
        self
    }

    pub fn finish(self) {}
}

fn report(group: &str, label: &str, median: Option<Duration>, samples: usize) {
    match median {
        Some(m) => {
            println!("{group}/{label:<40} {m:>12.2?}  ({samples} samples)");
            emit_json(group, label, m);
        }
        None => println!("{group}/{label:<40} (no measurement: iter never called)"),
    }
}

/// When `CRITERION_JSON` names a file, append one JSON line per measured
/// benchmark: `{"id":"<group>/<label>","median_ns":<n>}`. This is the
/// machine-readable channel the CI bench-baseline gate reads (see
/// `crates/bench/src/bin/bench_diff.rs`); the real criterion would provide
/// baselines natively.
fn emit_json(group: &str, label: &str, median: Duration) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let line = format!(
        "{{\"id\":\"{}/{}\",\"median_ns\":{}}}\n",
        group.replace('"', "'"),
        label.replace('"', "'"),
        median.as_nanos()
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: usize,
    default_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
            default_budget: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (samples, budget) = (self.default_samples, self.default_budget);
        BenchmarkGroup {
            name: name.into(),
            samples,
            budget,
            _criterion: self,
        }
    }

    pub fn bench_function<R>(&mut self, name: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.default_samples,
            budget: self.default_budget,
            last: None,
        };
        routine(&mut b);
        report("bench", name, b.last, self.default_samples);
        self
    }

    /// Accepted for CLI-compatibility with the real crate; filtering is not
    /// implemented — every registered benchmark runs.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Conversion helper so `bench_function` accepts both `&str` and
/// [`BenchmarkId`], as in real criterion.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (--bench, --test,
            // filters); a bench binary invoked with `--test` must run nothing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                hits += 1;
                x * 2
            })
        });
        assert!(hits > 0);
    }
}
