//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! provides exactly the slice of parking_lot's API that fastbn uses —
//! `Mutex::{new, lock, into_inner}` with panic-free `lock()` (poisoning is
//! transparently cleared: a panicked holder aborts the test anyway) and a
//! `Condvar` that waits on a `&mut MutexGuard` in place.

/// Mutual exclusion primitive with parking_lot's panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock`, never returns an error: poisoning is
    /// transparently cleared.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` so [`Condvar::wait`] can temporarily take the inner
/// std guard (std's condvar consumes and returns guards by value).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing and re-acquiring the lock
    /// behind `guard` (parking_lot signature: the guard is updated in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard taken during condvar wait");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.guard = Some(reacquired);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
