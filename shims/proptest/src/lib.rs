//! Offline stand-in for the `proptest` crate (see shims/README.md).
//!
//! Implements the slice of proptest used by the fastbn property suites:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map`,
//! * range strategies (`0usize..500`, `2usize..=40`, `0.05f64..0.5`),
//! * tuple strategies up to arity 6,
//! * [`collection::vec`] with a `Range<usize>` size,
//! * [`arbitrary::any`] for primitive types,
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`
//!   macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case reports its case number and the test's
//!   deterministic seed; re-running the test replays the identical sequence.
//! * **Deterministic by construction.** Case `i` of test `t` is generated
//!   from `hash(module_path::t, i)`, so failures reproduce across runs and
//!   machines without a persistence file.
//! * Default case count is 64 (not 256) to keep `cargo test` fast; suites
//!   that need a specific count set it via `ProptestConfig::with_cases`.

pub mod test_runner {
    /// Per-suite configuration (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case does not count, try another.
        Reject(String),
        /// An assertion failed: the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-case generator (SplitMix64 stream).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`; the name is
        /// FNV-1a-hashed so every test walks an independent stream.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32 | 0x5EED),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound > 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
            loop {
                let raw = self.next_u64();
                if raw < zone || zone == 0 {
                    return raw % bound;
                }
            }
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: a strategy is just a
    /// sampler (no shrinking), so `generate` returns the value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // i128 subtraction: a signed range wider than the type's
                    // MAX (e.g. -100i8..100) must not sign-extend into u64.
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == hi {
                        return lo;
                    }
                    // i128 subtraction as in the half-open case; the span
                    // is widened to u128 so `lo..=MAX` of a 64-bit type
                    // (span 2^64) falls through to a raw draw instead of
                    // overflowing to zero.
                    let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                    if span > u64::MAX as u128 {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            // `start + u·(end−start)` can round up to `end` itself when u is
            // just below 1 (ties-to-even); clamp to the largest value below
            // the excluded endpoint.
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            v.min(self.end.next_down())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
            v.min(self.end.next_down())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Uniform in `[0, 1)` — not the full bit pattern domain; the suites
        /// only use `any::<u64>()`, this is a convenience.
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`: `any::<u64>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size specifications for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempt: u32 = 0;
                // Rejection cap so a bad prop_assume! cannot loop forever.
                let max_attempts = config.cases.saturating_mul(16).max(1024);
                while accepted < config.cases && attempt < max_attempts {
                    attempt += 1;
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(test_name, attempt);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case failed: {} (deterministic case #{attempt} \
                                 of {}; rerun this test to replay)\n{msg}",
                                test_name, config.cases,
                            );
                        }
                    }
                }
                // A suite whose prop_assume! rejects nearly everything must
                // fail loudly, not pass having verified (close to) nothing —
                // mirrors real proptest's "too many global rejects" abort.
                assert!(
                    accepted >= config.cases,
                    "proptest {}: too many prop_assume! rejects \
                     ({accepted}/{} cases accepted after {attempt} attempts)",
                    test_name, config.cases,
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3usize..9, b in 2u64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((2..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_compose(v in crate::collection::vec((0usize..5, 0usize..5), 0..20)) {
            prop_assert!(v.len() < 20);
            for (x, y) in v {
                prop_assert!(x < 5 && y < 5);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..6))) {
            let (n, _k) = pair;
            prop_assert!((2..6).contains(&n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("x", 1);
        let mut b = TestRng::for_case("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("y", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
