//! Offline stand-in for the `crossbeam` crate (see shims/README.md).
//!
//! Only the piece fastbn uses is provided: `utils::CachePadded`, which pads
//! and aligns a value to 128 bytes — two 64-byte lines, covering the spatial
//! prefetcher pairing on x86 and the 128-byte lines on some aarch64 parts —
//! so per-thread counters never share a cache line (false sharing).

pub mod utils {
    /// Pads and aligns a value to 128 bytes.
    #[derive(Clone, Copy, Default, Debug)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn alignment_is_128() {
            assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
            let p = CachePadded::new(7u64);
            assert_eq!(*p, 7);
            assert_eq!(p.into_inner(), 7);
        }
    }
}
